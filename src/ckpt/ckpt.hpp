// Container format for osmosis.ckpt.v1 snapshots.
//
//   magic "osmosis.ckpt.v1\0"                       (16 bytes)
//   u64   chunk_count
//   chunk_count x { u32 name_len | name | u64 payload_len | payload }
//   u32   crc32 of every preceding byte
//
// Chunks are named per component ("switch.voq", "switch.sched", ...)
// with explicit lengths, so a reader that does not know a chunk name
// skips it instead of desynchronizing. The whole file is validated at
// open — magic, structure, trailing bytes, checksum — before any chunk
// is handed out, so a truncated or bit-flipped snapshot fails loudly
// (ckpt::Error) and partial state can never load.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::ckpt {

inline constexpr std::string_view kMagic{"osmosis.ckpt.v1\0", 16};

std::uint32_t crc32(std::string_view bytes);

// Accumulates named chunks and serializes them with the trailing CRC.
// write_file is atomic (tmp file + rename), so a crash mid-write never
// leaves a half-written snapshot under the final name.
class Writer {
 public:
  void add_chunk(std::string name, std::string payload);
  std::string serialize() const;
  void write_file(const std::string& path) const;  // throws Error on I/O

 private:
  std::vector<std::pair<std::string, std::string>> chunks_;
};

// Parses and fully validates a serialized snapshot, then serves chunk
// payloads as bounded Sources.
class Reader {
 public:
  static Reader from_bytes(std::string bytes);  // throws Error
  static Reader from_file(const std::string& path);  // throws Error

  bool has(std::string_view name) const;
  Source chunk(std::string_view name) const;  // throws Error if absent

 private:
  struct Entry {
    std::string name;
    std::size_t offset = 0;
    std::size_t size = 0;
  };

  std::string bytes_;
  std::vector<Entry> index_;
};

/// Serializes one component into a named chunk: `f(Sink&)` writes the
/// payload.
template <class F>
void write_chunk(Writer& w, std::string name, F&& f) {
  Sink s;
  f(s);
  w.add_chunk(std::move(name), s.take());
}

/// Loads one named chunk: `f(Source&)` consumes the payload, which must
/// be consumed exactly (trailing bytes throw).
template <class F>
void read_chunk(const Reader& r, std::string_view name, F&& f) {
  Source s = r.chunk(name);
  f(s);
  s.expect_end();
}

}  // namespace osmosis::ckpt
