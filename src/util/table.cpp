#include "src/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/util/log.hpp"

namespace osmosis::util {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  OSMOSIS_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  OSMOSIS_REQUIRE(cells.size() == headers_.size(),
                  "row width " << cells.size() << " != header width "
                               << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render_cell(const Cell& c) const {
  std::ostringstream oss;
  if (const auto* s = std::get_if<std::string>(&c)) {
    oss << *s;
  } else if (const auto* i = std::get_if<long long>(&c)) {
    oss << *i;
  } else {
    oss << std::setprecision(precision_) << std::fixed
        << std::get<double>(c);
  }
  return oss.str();
}

std::string Table::rendered(std::size_t r, std::size_t c) const {
  OSMOSIS_REQUIRE(r < rows_.size() && c < headers_.size(),
                  "cell (" << r << "," << c << ") out of range");
  return render_cell(rows_[r][c]);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered_rows;
  rendered_rows.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> rr;
    rr.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      rr.push_back(render_cell(row[c]));
      width[c] = std::max(width[c], rr.back().size());
    }
    rendered_rows.push_back(std::move(rr));
  }

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << cells[c];
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& rr : rendered_rows) emit(rr);
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << headers_[c] << (c + 1 == headers_.size() ? "\n" : ",");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << render_cell(row[c]) << (c + 1 == row.size() ? "\n" : ",");
  }
}

}  // namespace osmosis::util
