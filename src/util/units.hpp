#pragma once
// Units and small numeric helpers shared across the OSMOSIS library.
//
// Time is carried as double nanoseconds everywhere (the paper's natural
// unit: cell cycles are 51.2 ns, guard times a few ns, cable delays a few
// hundred ns). Data rates are double Gb/s. Strong typedefs proved noisier
// than helpful for this domain, so we use disciplined naming instead:
// any variable suffixed _ns, _gbps, _db, _dbm, _m carries that unit.

#include <cmath>
#include <cstdint>

namespace osmosis::util {

// ---- physical constants -------------------------------------------------

/// Speed of light in vacuum, m/s.
inline constexpr double kSpeedOfLightMps = 299'792'458.0;

/// Group index of standard single-mode fiber; light travels at c/n.
inline constexpr double kFiberGroupIndex = 1.468;

/// Propagation delay of one metre of standard fiber, in nanoseconds
/// (~4.9 ns/m; the paper budgets 250 ns for a 50 m machine-room diameter,
/// i.e. ~51 m of fiber).
inline constexpr double kFiberDelayNsPerM =
    1e9 * kFiberGroupIndex / kSpeedOfLightMps;

// ---- conversions ---------------------------------------------------------

/// Linear power ratio -> decibels.
inline double to_db(double linear) { return 10.0 * std::log10(linear); }

/// Decibels -> linear power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Absolute power in milliwatt -> dBm.
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// dBm -> absolute power in milliwatt.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Time to serialize `bytes` onto a line of `gbps` Gb/s, in ns.
inline double serialization_ns(double bytes, double gbps) {
  return bytes * 8.0 / gbps;
}

/// Propagation delay over `metres` of fiber, in ns.
inline double fiber_delay_ns(double metres) {
  return metres * kFiberDelayNsPerM;
}

/// GByte/s -> Gb/s (the paper quotes port speeds both ways:
/// 12 GByte/s ports, 40 Gb/s demonstrator lines).
inline double gbyte_to_gbit(double gbyte_per_s) { return gbyte_per_s * 8.0; }

// ---- tiny numeric helpers -------------------------------------------------

/// True when |a-b| is within `rel` relative tolerance (or `abs` absolute).
inline bool almost_equal(double a, double b, double rel = 1e-9,
                         double abs = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs) return true;
  return diff <= rel * std::fmax(std::fabs(a), std::fabs(b));
}

/// Integer ceil(log2(n)) for n >= 1; the paper's "log2 N iterations".
inline int ceil_log2(std::uint64_t n) {
  int bits = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// Integer x^p for small powers (fat-tree sizing arithmetic).
inline std::uint64_t ipow(std::uint64_t x, unsigned p) {
  std::uint64_t r = 1;
  while (p-- > 0) r *= x;
  return r;
}

}  // namespace osmosis::util
