#pragma once
// Aligned-column table writer used by every benchmark harness to print
// the rows/series the paper's tables and figures report, plus optional
// CSV emission for post-processing.

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace osmosis::util {

/// One table cell: text, integer, or a double with per-column precision.
using Cell = std::variant<std::string, long long, double>;

/// Builds a table row by row, then renders it aligned to a stream.
///
/// Usage:
///   Table t({"load", "mean delay [cycles]", "p99"});
///   t.add_row({0.5, 1.8, 4.0});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int precision = 4);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> cells);

  /// Renders with aligned columns, a header rule, and optional title.
  void print(std::ostream& os) const;

  /// Renders as CSV (no alignment, comma-separated, header first).
  void print_csv(std::ostream& os) const;

  void set_title(std::string title) { title_ = std::move(title); }

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }

  /// Cell accessor for tests: row r, column c, rendered as string.
  std::string rendered(std::size_t r, std::size_t c) const;

 private:
  std::string render_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  std::string title_;
  int precision_;
};

}  // namespace osmosis::util
