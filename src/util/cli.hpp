#pragma once
// Minimal command-line option parser for the example programs and
// benchmark harnesses. Supports `--key=value` and bare `--flag` forms;
// anything else is a positional argument.

#include <map>
#include <string>
#include <vector>

namespace osmosis::util {

/// Parsed command line with typed getters and defaults.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& def) const;
  long long get_int(const std::string& key, long long def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace osmosis::util
