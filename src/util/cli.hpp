#pragma once
// Minimal command-line option parser for the example programs and
// benchmark harnesses. Supports `--key=value` and bare `--flag` forms;
// anything else is a positional argument. Numeric getters are strict:
// a malformed value prints a usage error naming the flag and exits(2)
// rather than silently truncating. List-valued flags
// (`--loads=0.1,0.5,0.9`) back the sweep grids of the campaign runner
// and the bench harnesses.

#include <map>
#include <string>
#include <vector>

namespace osmosis::util {

// Strict parse helpers (exposed for tests). Each consumes the entire
// text or reports failure; `err` (optional) receives a human-readable
// reason.
bool parse_strict_int(const std::string& text, long long* out,
                      std::string* err = nullptr);
bool parse_strict_double(const std::string& text, double* out,
                         std::string* err = nullptr);
/// Comma-separated lists; empty items (",," or trailing comma) and an
/// entirely empty string are rejected.
bool parse_int_list(const std::string& text, std::vector<long long>* out,
                    std::string* err = nullptr);
bool parse_double_list(const std::string& text, std::vector<double>* out,
                       std::string* err = nullptr);

/// True for the boolean literals get_bool understands (either polarity):
/// "true", "false", "1", "0", "yes", "no", "on", "off". Path-valued
/// flags use this to catch `--resume` given without `=DIR` (the bare
/// form binds "true", which is never a real path).
bool is_boolean_literal(const std::string& text);

/// Parsed command line with typed getters and defaults.
///
/// Every typed getter records the flag it was asked for (key, value
/// type, default) in a registry, so once a tool has read its full flag
/// set, maybe_help() can print an accurate usage listing — no separate
/// flag table to keep in sync. Convention for tools:
///
///   util::Cli cli(argc, argv);
///   const auto ports = cli.get_int("ports", 64);   // ... all flags ...
///   cli.maybe_help("sweep serving load envelopes");  // after the last get
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& def) const;
  long long get_int(const std::string& key, long long def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Path-valued flags: like get(), but a boolean-like value ("true",
  /// "0", "off", ...) is a usage error — it almost always means the flag
  /// was passed bare (`--resume` instead of `--resume=DIR`).
  std::string get_path(const std::string& key, const std::string& def) const;

  /// List-valued flags: `--key=a,b,c`. Absent key returns `def`;
  /// malformed values are a usage error (message to stderr, exit 2).
  std::vector<long long> get_ints(const std::string& key,
                                  std::vector<long long> def) const;
  std::vector<double> get_doubles(const std::string& key,
                                  std::vector<double> def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// One registered flag: value type ("int", "number", "bool", "string",
  /// "path", "int-list", "number-list", or "flag" for bare presence
  /// checks) and the rendered default.
  struct FlagInfo {
    std::string type;
    std::string def;
  };
  /// Flags the getters have been asked for so far, sorted by key.
  const std::map<std::string, FlagInfo>& flags() const { return flags_; }

  /// Renders the usage text: synopsis line plus one row per registered
  /// flag. Deterministic (keys sorted, defaults from the getters).
  std::string usage(const std::string& synopsis = "") const;

  /// With --help (or -h as a positional) on the command line: prints
  /// usage() to stdout and exits 0. Call after the tool's last getter so
  /// the listing covers every flag.
  void maybe_help(const std::string& synopsis = "") const;

 private:
  [[noreturn]] void usage_error(const std::string& key,
                                const std::string& reason) const;
  void note(const std::string& key, const char* type,
            std::string def) const;

  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, FlagInfo> flags_;  // see flags()
};

}  // namespace osmosis::util
