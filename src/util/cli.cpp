#include "src/util/cli.hpp"

#include <cstdlib>
#include <string_view>

#include "src/util/log.hpp"

namespace osmosis::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      options_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else {
      // Bare flag. Only the --key=value form binds a value, so flags and
      // positionals never collide.
      options_[std::string(arg)] = "true";
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  auto it = options_.find(key);
  return it == options_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& key, long long def) const {
  auto it = options_.find(key);
  if (it == options_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = options_.find(key);
  if (it == options_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = options_.find(key);
  if (it == options_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace osmosis::util
