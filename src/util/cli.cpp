#include "src/util/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string_view>

namespace osmosis::util {

namespace {

void set_err(std::string* err, const std::string& msg) {
  if (err) *err = msg;
}

std::string render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

bool parse_strict_int(const std::string& text, long long* out,
                      std::string* err) {
  if (text.empty()) {
    set_err(err, "empty value where an integer was expected");
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 0);
  if (errno != 0 || end != text.c_str() + text.size()) {
    set_err(err, "'" + text + "' is not an integer");
    return false;
  }
  *out = v;
  return true;
}

bool parse_strict_double(const std::string& text, double* out,
                         std::string* err) {
  if (text.empty()) {
    set_err(err, "empty value where a number was expected");
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) {
    set_err(err, "'" + text + "' is not a number");
    return false;
  }
  *out = v;
  return true;
}

namespace {

// Shared comma-splitting shell for the two list parsers.
template <typename T, typename ParseOne>
bool parse_list(const std::string& text, std::vector<T>* out,
                std::string* err, ParseOne parse_one) {
  std::vector<T> items;
  std::size_t start = 0;
  if (text.empty()) {
    set_err(err, "empty list");
    return false;
  }
  for (;;) {
    const std::size_t comma = text.find(',', start);
    const std::string item = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    T v;
    if (!parse_one(item, &v, err)) return false;
    items.push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  *out = std::move(items);
  return true;
}

}  // namespace

bool parse_int_list(const std::string& text, std::vector<long long>* out,
                    std::string* err) {
  return parse_list<long long>(text, out, err, parse_strict_int);
}

bool parse_double_list(const std::string& text, std::vector<double>* out,
                       std::string* err) {
  return parse_list<double>(text, out, err, parse_strict_double);
}

bool is_boolean_literal(const std::string& text) {
  return text == "true" || text == "false" || text == "1" || text == "0" ||
         text == "yes" || text == "no" || text == "on" || text == "off";
}

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      options_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else {
      // Bare flag. Only the --key=value form binds a value, so flags and
      // positionals never collide.
      options_[std::string(arg)] = "true";
    }
  }
}

bool Cli::has(const std::string& key) const {
  note(key, "flag", "off");
  return options_.count(key) > 0;
}

std::string Cli::get(const std::string& key, const std::string& def) const {
  note(key, "string", def);
  auto it = options_.find(key);
  return it == options_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& key, long long def) const {
  note(key, "int", std::to_string(def));
  auto it = options_.find(key);
  if (it == options_.end()) return def;
  long long v = 0;
  std::string err;
  if (!parse_strict_int(it->second, &v, &err)) usage_error(key, err);
  return v;
}

double Cli::get_double(const std::string& key, double def) const {
  note(key, "number", render_double(def));
  auto it = options_.find(key);
  if (it == options_.end()) return def;
  double v = 0.0;
  std::string err;
  if (!parse_strict_double(it->second, &v, &err)) usage_error(key, err);
  return v;
}

bool Cli::get_bool(const std::string& key, bool def) const {
  note(key, "bool", def ? "true" : "false");
  auto it = options_.find(key);
  if (it == options_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Cli::get_path(const std::string& key,
                          const std::string& def) const {
  note(key, "path", def);
  auto it = options_.find(key);
  if (it == options_.end()) return def;
  if (is_boolean_literal(it->second))
    usage_error(key, "'" + it->second + "' is not a path; use --" + key +
                         "=PATH");
  return it->second;
}

std::vector<long long> Cli::get_ints(const std::string& key,
                                     std::vector<long long> def) const {
  std::string rendered;
  for (std::size_t i = 0; i < def.size(); ++i) {
    if (i) rendered += ',';
    rendered += std::to_string(def[i]);
  }
  note(key, "int-list", rendered);
  auto it = options_.find(key);
  if (it == options_.end()) return def;
  std::vector<long long> v;
  std::string err;
  if (!parse_int_list(it->second, &v, &err))
    usage_error(key, err + " (expected comma-separated integers)");
  return v;
}

std::vector<double> Cli::get_doubles(const std::string& key,
                                     std::vector<double> def) const {
  std::string rendered;
  for (std::size_t i = 0; i < def.size(); ++i) {
    if (i) rendered += ',';
    rendered += render_double(def[i]);
  }
  note(key, "number-list", rendered);
  auto it = options_.find(key);
  if (it == options_.end()) return def;
  std::vector<double> v;
  std::string err;
  if (!parse_double_list(it->second, &v, &err))
    usage_error(key, err + " (expected comma-separated numbers)");
  return v;
}

void Cli::note(const std::string& key, const char* type,
               std::string def) const {
  // A bare has() probe registers as "flag", but a typed getter for the
  // same key knows more — let it overwrite; never the other way round.
  auto it = flags_.find(key);
  if (it != flags_.end() &&
      (it->second.type != "flag" || std::string(type) == "flag"))
    return;
  flags_[key] = FlagInfo{type, std::move(def)};
}

std::string Cli::usage(const std::string& synopsis) const {
  std::string out = "usage: " +
                    (program_.empty() ? std::string("osmosis") : program_) +
                    " [--flag=value ...]\n";
  if (!synopsis.empty()) out += "\n" + synopsis + "\n";
  if (flags_.empty()) return out;
  out += "\nflags:\n";
  std::size_t width = 0;
  std::map<std::string, std::string> lhs;
  for (const auto& [key, info] : flags_) {
    std::string l = "--";
    l += key;
    if (info.type != "flag") {
      l += "=<";
      l += info.type;
      l += ">";
    }
    width = std::max(width, l.size());
    lhs.emplace(key, std::move(l));
  }
  for (const auto& [key, info] : flags_) {
    std::string line = "  " + lhs[key];
    line.append(width + 2 - lhs[key].size(), ' ');
    line += info.type == "flag" ? "(presence flag)"
                                : "(default: " + info.def + ")";
    out += line + "\n";
  }
  out += "  --help";
  out.append(width + 2 - 6, ' ');
  out += "(print this listing and exit)\n";
  return out;
}

void Cli::maybe_help(const std::string& synopsis) const {
  if (options_.count("help") == 0) return;
  std::cout << usage(synopsis);
  std::exit(0);
}

void Cli::usage_error(const std::string& key, const std::string& reason) const {
  std::cerr << (program_.empty() ? "osmosis" : program_) << ": error: --"
            << key << ": " << reason << "\n";
  std::exit(2);
}

}  // namespace osmosis::util
