#include "src/util/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace osmosis::util {

void fatal(std::string_view file, int line, const std::string& msg) {
  std::fprintf(stderr, "[osmosis fatal] %.*s:%d: %s\n",
               static_cast<int>(file.size()), file.data(), line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace osmosis::util
