#pragma once
// Assertion and fatal-error helpers.
//
// OSMOSIS_REQUIRE is an always-on precondition check (simulation models
// are full of structural invariants whose violation means the experiment
// is meaningless, so we never compile them out). On failure it prints the
// message and aborts.

#include <sstream>
#include <string>
#include <string_view>

namespace osmosis::util {

/// Print `msg` (with file/line context) to stderr and abort.
[[noreturn]] void fatal(std::string_view file, int line, const std::string& msg);

}  // namespace osmosis::util

#define OSMOSIS_REQUIRE(cond, msg)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream oss_;                                            \
      oss_ << "requirement failed: " #cond " — " << msg;                  \
      ::osmosis::util::fatal(__FILE__, __LINE__, oss_.str());             \
    }                                                                     \
  } while (0)
