#include "src/baseline/birkhoff.hpp"

#include "src/util/log.hpp"

namespace osmosis::baseline {

BvnSwitch::BvnSwitch(int ports, std::unique_ptr<sim::TrafficGen> traffic)
    : ports_(ports),
      traffic_(std::move(traffic)),
      middle_voq_(static_cast<std::size_t>(ports),
                  std::vector<std::deque<sw::Cell>>(
                      static_cast<std::size_t>(ports))),
      flow_seq_(static_cast<std::size_t>(ports) *
                    static_cast<std::size_t>(ports),
                0) {
  OSMOSIS_REQUIRE(ports_ >= 1, "need at least one port");
  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == ports_,
                  "traffic generator port mismatch");
}

BvnResult BvnSwitch::run(std::uint64_t warmup, std::uint64_t measure) {
  sim::Histogram delay_hist(256.0);
  sim::ThroughputMeter meter;
  sim::ReorderDetector reorder;
  BvnResult r;
  r.ports = ports_;
  r.offered_load = traffic_->offered_load();

  const std::uint64_t total = warmup + measure;
  for (std::uint64_t t = 0; t < total; ++t) {
    const bool measuring = t >= warmup;
    const int shift = static_cast<int>(t % static_cast<std::uint64_t>(ports_));

    // Stage 1 (TDM): input i is wired to middle (i + t) mod N; an
    // arriving cell crosses immediately, regardless of its destination.
    for (int in = 0; in < ports_; ++in) {
      sim::Arrival a;
      if (!traffic_->sample(in, a)) continue;
      const std::size_t flow = static_cast<std::size_t>(in) *
                                   static_cast<std::size_t>(ports_) +
                               static_cast<std::size_t>(a.dst);
      sw::Cell cell;
      cell.src = in;
      cell.dst = a.dst;
      cell.seq = flow_seq_[flow]++;
      cell.arrival_slot = t;
      const int mid = (in + shift) % ports_;
      middle_voq_[static_cast<std::size_t>(mid)]
                 [static_cast<std::size_t>(a.dst)]
                     .push_back(cell);
    }

    // Stage 2 (TDM): middle m is wired to output (m + t) mod N and sends
    // the head of the matching VOQ if any.
    for (int mid = 0; mid < ports_; ++mid) {
      const int out = (mid + shift) % ports_;
      auto& q = middle_voq_[static_cast<std::size_t>(mid)]
                           [static_cast<std::size_t>(out)];
      if (q.empty()) continue;
      const sw::Cell cell = q.front();
      q.pop_front();
      reorder.deliver(cell.src, cell.dst, cell.seq);
      if (measuring) {
        delay_hist.add(static_cast<double>(t - cell.arrival_slot) + 1.0);
        meter.add_delivery();
      }
    }
    if (measuring)
      meter.advance_slots(1, static_cast<std::uint64_t>(ports_));
  }

  r.throughput = meter.utilization();
  r.mean_delay = delay_hist.mean();
  r.p99_delay = delay_hist.p99();
  r.delivered = delay_hist.count();
  r.out_of_order = reorder.out_of_order();
  r.reorder_fraction = reorder.reorder_fraction();
  return r;
}

BvnResult run_bvn_uniform(int ports, double load, std::uint64_t seed,
                          std::uint64_t warmup, std::uint64_t measure) {
  BvnSwitch s(ports, sim::make_uniform(ports, load, seed));
  return s.run(warmup, measure);
}

}  // namespace osmosis::baseline
