#include "src/baseline/oq_switch.hpp"

#include "src/util/log.hpp"

namespace osmosis::baseline {

OqSwitch::OqSwitch(int ports, std::unique_ptr<sim::TrafficGen> traffic)
    : ports_(ports),
      traffic_(std::move(traffic)),
      out_queue_(static_cast<std::size_t>(ports)),
      flow_seq_(static_cast<std::size_t>(ports) *
                    static_cast<std::size_t>(ports),
                0) {
  OSMOSIS_REQUIRE(ports_ >= 1, "need at least one port");
  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == ports_,
                  "traffic generator port mismatch");
}

OqResult OqSwitch::run(std::uint64_t warmup, std::uint64_t measure) {
  sim::Histogram delay_hist;
  sim::ThroughputMeter meter;
  sim::ReorderDetector reorder;
  OqResult r;
  r.offered_load = traffic_->offered_load();

  const std::uint64_t total = warmup + measure;
  for (std::uint64_t t = 0; t < total; ++t) {
    const bool measuring = t >= warmup;
    // Arrivals land straight in their output queues (speedup-N fabric).
    for (int in = 0; in < ports_; ++in) {
      sim::Arrival a;
      if (!traffic_->sample(in, a)) continue;
      const std::size_t flow = static_cast<std::size_t>(in) *
                                   static_cast<std::size_t>(ports_) +
                               static_cast<std::size_t>(a.dst);
      sw::Cell cell;
      cell.src = in;
      cell.dst = a.dst;
      cell.seq = flow_seq_[flow]++;
      cell.arrival_slot = t;
      cell.cls = a.cls;
      out_queue_[static_cast<std::size_t>(a.dst)].push_back(cell);
    }
    // Outputs drain one cell per cycle; by construction no output idles
    // while it has work, so work conservation holds trivially — we keep
    // the flag to document the property the paper cites from [11].
    for (int out = 0; out < ports_; ++out) {
      auto& q = out_queue_[static_cast<std::size_t>(out)];
      if (q.empty()) continue;
      const sw::Cell cell = q.front();
      q.pop_front();
      reorder.deliver(cell.src, cell.dst, cell.seq);
      if (measuring) {
        delay_hist.add(static_cast<double>(t - cell.arrival_slot) + 1.0);
        meter.add_delivery();
      }
    }
    if (measuring)
      meter.advance_slots(1, static_cast<std::uint64_t>(ports_));
  }

  r.throughput = meter.utilization();
  r.mean_delay = delay_hist.mean();
  r.p99_delay = delay_hist.p99();
  r.delivered = delay_hist.count();
  r.out_of_order = reorder.out_of_order();
  r.work_conserving_violated = false;
  return r;
}

OqResult run_oq_uniform(int ports, double load, std::uint64_t seed,
                        std::uint64_t warmup, std::uint64_t measure) {
  OqSwitch s(ports, sim::make_uniform(ports, load, seed));
  return s.run(warmup, measure);
}

}  // namespace osmosis::baseline
