#pragma once
// Ideal output-queued switch — the work-conserving reference ([11],
// [16]): every arriving cell is placed directly into its output queue
// (conceptually an N-times speedup crossbar), and each output drains one
// cell per cycle. No output is ever idle while a cell for it exists
// anywhere in the switch, so this gives the delay/throughput floor that
// input-queued architectures are measured against. Traditional
// supercomputer interconnects (SP2-style) used output-queued electronic
// switches; the paper's point is that optics cannot buffer, forcing the
// input-queued + central-scheduler architecture.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/cell.hpp"

namespace osmosis::baseline {

struct OqResult {
  double offered_load = 0.0;
  double throughput = 0.0;
  double mean_delay = 0.0;
  double p99_delay = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t out_of_order = 0;  // always 0
  bool work_conserving_violated = false;  // checked every cycle
};

class OqSwitch {
 public:
  OqSwitch(int ports, std::unique_ptr<sim::TrafficGen> traffic);

  OqResult run(std::uint64_t warmup, std::uint64_t measure);

 private:
  int ports_;
  std::unique_ptr<sim::TrafficGen> traffic_;
  std::vector<std::deque<sw::Cell>> out_queue_;
  std::vector<std::uint64_t> flow_seq_;
};

/// Convenience for the bench sweep.
OqResult run_oq_uniform(int ports, double load, std::uint64_t seed,
                        std::uint64_t warmup = 2'000,
                        std::uint64_t measure = 30'000);

}  // namespace osmosis::baseline
