#pragma once
// Load-balanced Birkhoff-von-Neumann switch ([24], discussed in §VI.D):
// two stages of demand-oblivious TDM crossbars around a middle stage of
// VOQ buffers. Stage 1 spreads arrivals round-robin over the middle
// ports, shaping any admissible traffic to uniform; stage 2's rotating
// pattern then drains the middle VOQs at full rate. Scales beautifully
// (no scheduler at all) — but an unloaded N-port switch still makes a
// cell wait on average N/2 cycles for the rotation to come around, and
// cells of one flow ride different middle ports with different waits, so
// delivery is out of order. Both properties disqualify it for HPC
// fabrics, which is the paper's argument; this model measures them.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/cell.hpp"

namespace osmosis::baseline {

struct BvnResult {
  int ports = 0;
  double offered_load = 0.0;
  double throughput = 0.0;
  double mean_delay = 0.0;   // cycles; ~N/2 + transfer even when unloaded
  double p99_delay = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t out_of_order = 0;   // substantial by design
  double reorder_fraction = 0.0;
};

class BvnSwitch {
 public:
  BvnSwitch(int ports, std::unique_ptr<sim::TrafficGen> traffic);

  BvnResult run(std::uint64_t warmup, std::uint64_t measure);

 private:
  int ports_;
  std::unique_ptr<sim::TrafficGen> traffic_;
  // middle_voq_[m][out]: cells parked at middle port m for output `out`.
  std::vector<std::vector<std::deque<sw::Cell>>> middle_voq_;
  std::vector<std::uint64_t> flow_seq_;
};

BvnResult run_bvn_uniform(int ports, double load, std::uint64_t seed,
                          std::uint64_t warmup = 2'000,
                          std::uint64_t measure = 30'000);

}  // namespace osmosis::baseline
