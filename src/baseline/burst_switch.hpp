#pragma once
// Burst / container / envelope switching ([5], [6], §II and §VI.D): the
// classical workaround for slow optical reconfiguration and scheduling.
// Cells heading to the same output are aggregated into containers of S
// cells; the crossbar is scheduled once per container, amortizing the
// guard time and the arbitration over S cell cycles. The cost — and the
// reason the paper rejects it for HPC — is that an unloaded switch makes
// a cell wait for its container to fill (or for an aggregation timeout),
// so latency is on the order of the burst time even with no contention.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/cell.hpp"

namespace osmosis::baseline {

struct BurstSwitchConfig {
  int ports = 16;
  int burst_cells = 16;        // container capacity S
  int aggregation_timeout = 0; // slots before a partial container ships;
                               // 0 = 4 * burst_cells (a typical setting)
  std::uint64_t warmup_slots = 2'000;
  std::uint64_t measure_slots = 30'000;
};

struct BurstSwitchResult {
  int ports = 0;
  int burst_cells = 0;
  double offered_load = 0.0;
  double throughput = 0.0;
  double mean_delay = 0.0;   // ~burst time even unloaded
  double p99_delay = 0.0;
  std::uint64_t delivered = 0;
  double mean_container_fill = 0.0;  // cells per shipped container
};

/// Slot-accurate burst-switching crossbar: containers become eligible
/// when full or timed out; a round-robin matcher connects eligible
/// (input, output) pairs, and a connection holds for `burst_cells`
/// slots while the container drains.
class BurstSwitch {
 public:
  BurstSwitch(BurstSwitchConfig cfg, std::unique_ptr<sim::TrafficGen> traffic);

  BurstSwitchResult run();

 private:
  struct Aggregator {
    std::deque<sw::Cell> cells;
    std::uint64_t oldest_slot = 0;  // arrival of the current head cell
  };

  BurstSwitchConfig cfg_;
  std::unique_ptr<sim::TrafficGen> traffic_;
  std::vector<Aggregator> agg_;              // [in * ports + out]
  std::vector<std::uint64_t> in_busy_until_;
  std::vector<std::uint64_t> out_busy_until_;
  std::vector<int> rr_ptr_;  // per output: round-robin over inputs
};

BurstSwitchResult run_burst_uniform(const BurstSwitchConfig& cfg, double load,
                                    std::uint64_t seed);

}  // namespace osmosis::baseline
