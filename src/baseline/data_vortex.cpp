#include "src/baseline/data_vortex.hpp"

#include <algorithm>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::baseline {

DataVortex::DataVortex(DataVortexConfig cfg,
                       std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg),
      // log2(N) descents fix all address bits, so log2(N)+1 cylinders.
      levels_(util::ceil_log2(static_cast<std::uint64_t>(cfg.ports)) + 1),
      traffic_(std::move(traffic)) {
  OSMOSIS_REQUIRE(cfg_.ports >= 2 && (cfg_.ports & (cfg_.ports - 1)) == 0,
                  "Data Vortex needs a power-of-two port count");
  OSMOSIS_REQUIRE(cfg_.angles >= 2, "need at least two angle positions");
  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == cfg_.ports,
                  "traffic generator port mismatch");
  const std::size_t nodes = static_cast<std::size_t>(levels_) *
                            static_cast<std::size_t>(cfg_.ports) *
                            static_cast<std::size_t>(cfg_.angles);
  nodes_.assign(nodes, std::nullopt);
  next_nodes_.assign(nodes, std::nullopt);
  inject_queue_.resize(static_cast<std::size_t>(cfg_.ports));
  flow_seq_.assign(static_cast<std::size_t>(cfg_.ports) *
                       static_cast<std::size_t>(cfg_.ports),
                   0);
}

int DataVortex::node_index(int cyl, int height, int angle) const {
  return (cyl * cfg_.ports + height) * cfg_.angles + angle;
}

bool DataVortex::height_matches(int height, int dst, int cyl) const {
  // In cylinder c the top c address bits of the height are already
  // fixed to the destination's.
  if (cyl == 0) return true;
  const int shift = (levels_ - 1) - cyl;  // address bits = levels_ - 1
  return (height >> shift) == (dst >> shift);
}

DataVortexResult DataVortex::run() {
  sim::Histogram delay_hist(256.0);
  sim::ThroughputMeter meter;
  sim::MeanVar hops_stat;
  std::uint64_t deflections_total = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t injection_blocked = 0;

  DataVortexResult r;
  r.ports = cfg_.ports;
  r.offered_load = traffic_->offered_load();

  std::vector<std::uint8_t> output_used(
      static_cast<std::size_t>(cfg_.ports), 0);

  const std::uint64_t total = cfg_.warmup_slots + cfg_.measure_slots;
  for (std::uint64_t t = 0; t < total; ++t) {
    const bool measuring = t >= cfg_.warmup_slots;

    // New offered traffic joins the injection queues.
    for (int in = 0; in < cfg_.ports; ++in) {
      sim::Arrival a;
      if (!traffic_->sample(in, a)) continue;
      Packet p;
      p.dst = a.dst;
      p.arrival_slot = t;
      inject_queue_[static_cast<std::size_t>(in)].push_back(p);
    }

    // Synchronous hop: innermost cylinders move first (they have
    // priority; a resident packet blocks descents into its next node).
    std::fill(next_nodes_.begin(), next_nodes_.end(), std::nullopt);
    std::fill(output_used.begin(), output_used.end(), 0);

    for (int cyl = levels_ - 1; cyl >= 0; --cyl) {
      for (int h = 0; h < cfg_.ports; ++h) {
        for (int a = 0; a < cfg_.angles; ++a) {
          auto& slot = nodes_[static_cast<std::size_t>(node_index(cyl, h, a))];
          if (!slot) continue;
          Packet p = *slot;
          ++p.hops;
          const int next_angle = (a + 1) % cfg_.angles;

          // Innermost cylinder with the full address resolved: exit.
          if (cyl == levels_ - 1 && h == p.dst) {
            if (!output_used[static_cast<std::size_t>(p.dst)]) {
              output_used[static_cast<std::size_t>(p.dst)] = 1;
              delivered_total += 1;
              deflections_total += static_cast<std::uint64_t>(p.deflections);
              if (measuring) {
                delay_hist.add(static_cast<double>(t - p.arrival_slot) + 1.0);
                hops_stat.add(static_cast<double>(p.hops));
                meter.add_delivery();
              }
              continue;
            }
            // Output busy this slot: deflect around the ring.
            ++p.deflections;
            next_nodes_[static_cast<std::size_t>(
                node_index(cyl, h, next_angle))] = p;
            continue;
          }

          // Try to descend, fixing the next address bit of the height.
          if (cyl < levels_ - 1) {
            const int bit = levels_ - 2 - cyl;  // bit refined by this hop
            const int h_down =
                (h & ~(1 << bit)) | (p.dst & (1 << bit));
            auto& target = next_nodes_[static_cast<std::size_t>(
                node_index(cyl + 1, h_down, next_angle))];
            if (!target && height_matches(h_down, p.dst, cyl + 1)) {
              target = p;
              continue;
            }
          }
          // Deflection: continue around the current cylinder. Ring
          // rotation is injective, and inner cylinders (processed first)
          // never reserve outer-cylinder nodes, so the slot is free.
          ++p.deflections;
          next_nodes_[static_cast<std::size_t>(
              node_index(cyl, h, next_angle))] = p;
        }
      }
    }

    // Injection at cylinder 0, height = input index, angle 0 — one
    // opportunity per input per slot, blocked while the node is busy.
    for (int in = 0; in < cfg_.ports; ++in) {
      auto& q = inject_queue_[static_cast<std::size_t>(in)];
      if (q.empty()) continue;
      auto& entry =
          next_nodes_[static_cast<std::size_t>(node_index(0, in, 0))];
      if (entry) {
        ++injection_blocked;
        continue;
      }
      entry = q.front();
      q.pop_front();
    }

    nodes_.swap(next_nodes_);
    if (measuring)
      meter.advance_slots(1, static_cast<std::uint64_t>(cfg_.ports));
  }

  r.throughput = meter.utilization();
  r.mean_delay = delay_hist.mean();
  r.p99_delay = delay_hist.p99();
  r.mean_hops = hops_stat.mean();
  r.deflection_rate =
      delivered_total
          ? static_cast<double>(deflections_total) /
                static_cast<double>(delivered_total)
          : 0.0;
  r.delivered = delay_hist.count();
  r.injection_blocked = injection_blocked;
  return r;
}

DataVortexResult run_vortex_uniform(const DataVortexConfig& cfg, double load,
                                    std::uint64_t seed) {
  DataVortex v(cfg, sim::make_uniform(cfg.ports, load, seed));
  return v.run();
}

}  // namespace osmosis::baseline
