#pragma once
// Combined input/output-queued (CIOQ) switch with crossbar speedup S and
// LIMITED output buffers — reference [11] (Minkenberg, "Work-
// conservingness of CIOQ packet switches with limited output buffers"),
// the result behind the paper's Table 1 requirement that "the switches
// must be work-conserving".
//
// The crossbar runs S matching phases per cell cycle, so up to S cells
// can reach an output queue per cycle while the line drains one. With
// S = 1 the switch is input-queued and idles outputs that have work
// parked behind other inputs (head-of-line style non-work-conservation);
// with S = 2 and enough output buffering it becomes work-conserving in
// practice. This model measures the violation rate directly: a cycle in
// which an output line idles while a cell for that output sits anywhere
// in the switch.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/scheduler.hpp"
#include "src/sw/voq.hpp"

namespace osmosis::baseline {

struct CioqConfig {
  int ports = 16;
  int speedup = 2;              // matching phases per cell cycle
  int output_buffer_cells = 8;  // per-output queue capacity ([11]'s limit)
  std::uint64_t warmup_slots = 1'000;
  std::uint64_t measure_slots = 20'000;
};

struct CioqResult {
  int ports = 0;
  int speedup = 0;
  double offered_load = 0.0;
  double throughput = 0.0;
  double mean_delay = 0.0;
  std::uint64_t delivered = 0;
  // Cycles where an output line idled although the switch held a cell
  // for it, over all output-cycles with work somewhere.
  double work_conservation_violation_rate = 0.0;
  int max_output_occupancy = 0;
  std::uint64_t out_of_order = 0;
};

class CioqSwitch {
 public:
  CioqSwitch(CioqConfig cfg, std::unique_ptr<sim::TrafficGen> traffic);

  CioqResult run();

 private:
  CioqConfig cfg_;
  std::unique_ptr<sim::TrafficGen> traffic_;
  std::unique_ptr<sw::Scheduler> sched_;
  std::vector<sw::VoqBank> voqs_;
  std::vector<std::deque<sw::Cell>> out_queue_;
  std::vector<std::uint64_t> flow_seq_;
};

CioqResult run_cioq_uniform(const CioqConfig& cfg, double load,
                            std::uint64_t seed);

}  // namespace osmosis::baseline
