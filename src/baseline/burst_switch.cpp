#include "src/baseline/burst_switch.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::baseline {

BurstSwitch::BurstSwitch(BurstSwitchConfig cfg,
                         std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg), traffic_(std::move(traffic)) {
  OSMOSIS_REQUIRE(cfg_.ports >= 1, "need at least one port");
  OSMOSIS_REQUIRE(cfg_.burst_cells >= 1, "container must hold >= 1 cell");
  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == cfg_.ports,
                  "traffic generator port mismatch");
  if (cfg_.aggregation_timeout <= 0)
    cfg_.aggregation_timeout = 4 * cfg_.burst_cells;
  agg_.resize(static_cast<std::size_t>(cfg_.ports) *
              static_cast<std::size_t>(cfg_.ports));
  in_busy_until_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  out_busy_until_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  rr_ptr_.assign(static_cast<std::size_t>(cfg_.ports), 0);
}

BurstSwitchResult BurstSwitch::run() {
  sim::Histogram delay_hist(256.0);
  sim::ThroughputMeter meter;
  sim::MeanVar fill_stat;

  BurstSwitchResult r;
  r.ports = cfg_.ports;
  r.burst_cells = cfg_.burst_cells;
  r.offered_load = traffic_->offered_load();

  const std::uint64_t total = cfg_.warmup_slots + cfg_.measure_slots;
  const auto S = static_cast<std::uint64_t>(cfg_.burst_cells);

  for (std::uint64_t t = 0; t < total; ++t) {
    const bool measuring = t >= cfg_.warmup_slots;

    // Aggregate arrivals into per-(input, output) containers.
    for (int in = 0; in < cfg_.ports; ++in) {
      sim::Arrival a;
      if (!traffic_->sample(in, a)) continue;
      sw::Cell cell;
      cell.src = in;
      cell.dst = a.dst;
      cell.arrival_slot = t;
      Aggregator& agg = agg_[static_cast<std::size_t>(in) *
                                 static_cast<std::size_t>(cfg_.ports) +
                             static_cast<std::size_t>(a.dst)];
      if (agg.cells.empty()) agg.oldest_slot = t;
      agg.cells.push_back(cell);
    }

    // Round-robin matching over eligible containers; a match holds both
    // ports for the full container drain time.
    auto eligible = [&](int in, int out) {
      const Aggregator& agg =
          agg_[static_cast<std::size_t>(in) *
                   static_cast<std::size_t>(cfg_.ports) +
               static_cast<std::size_t>(out)];
      if (agg.cells.empty()) return false;
      return static_cast<int>(agg.cells.size()) >= cfg_.burst_cells ||
             t - agg.oldest_slot >=
                 static_cast<std::uint64_t>(cfg_.aggregation_timeout);
    };

    for (int out = 0; out < cfg_.ports; ++out) {
      if (out_busy_until_[static_cast<std::size_t>(out)] > t) continue;
      int& ptr = rr_ptr_[static_cast<std::size_t>(out)];
      for (int k = 0; k < cfg_.ports; ++k) {
        const int in = (ptr + k) % cfg_.ports;
        if (in_busy_until_[static_cast<std::size_t>(in)] > t) continue;
        if (!eligible(in, out)) continue;

        Aggregator& agg = agg_[static_cast<std::size_t>(in) *
                                   static_cast<std::size_t>(cfg_.ports) +
                               static_cast<std::size_t>(out)];
        const int take = std::min<int>(cfg_.burst_cells,
                                       static_cast<int>(agg.cells.size()));
        // The connection holds for a full container slot regardless of
        // fill — that is the burst-switching overhead model.
        in_busy_until_[static_cast<std::size_t>(in)] = t + S;
        out_busy_until_[static_cast<std::size_t>(out)] = t + S;
        fill_stat.add(static_cast<double>(take));
        for (int c = 0; c < take; ++c) {
          const sw::Cell cell = agg.cells.front();
          agg.cells.pop_front();
          // Cell c of the container leaves the switch at t + c + 1.
          if (measuring) {
            delay_hist.add(static_cast<double>(t + 1 + c - cell.arrival_slot));
            meter.add_delivery();
          }
        }
        if (!agg.cells.empty()) agg.oldest_slot = t + 1;
        ptr = (in + 1) % cfg_.ports;
        break;
      }
    }
    if (measuring)
      meter.advance_slots(1, static_cast<std::uint64_t>(cfg_.ports));
  }

  r.throughput = meter.utilization();
  r.mean_delay = delay_hist.mean();
  r.p99_delay = delay_hist.p99();
  r.delivered = delay_hist.count();
  r.mean_container_fill = fill_stat.mean();
  return r;
}

BurstSwitchResult run_burst_uniform(const BurstSwitchConfig& cfg, double load,
                                    std::uint64_t seed) {
  BurstSwitch s(cfg, sim::make_uniform(cfg.ports, load, seed));
  return s.run();
}

}  // namespace osmosis::baseline
