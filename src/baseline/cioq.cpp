#include "src/baseline/cioq.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::baseline {

CioqSwitch::CioqSwitch(CioqConfig cfg,
                       std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg), traffic_(std::move(traffic)) {
  OSMOSIS_REQUIRE(cfg_.ports >= 2, "need at least two ports");
  OSMOSIS_REQUIRE(cfg_.speedup >= 1, "speedup must be >= 1");
  OSMOSIS_REQUIRE(cfg_.output_buffer_cells >= 1,
                  "need at least one output buffer cell");
  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == cfg_.ports,
                  "traffic generator port mismatch");
  sw::SchedulerConfig sc;
  sc.kind = sw::SchedulerKind::kIslip;
  sc.ports = cfg_.ports;
  sc.receivers = 1;
  sched_ = sw::make_scheduler(sc);
  voqs_.reserve(static_cast<std::size_t>(cfg_.ports));
  for (int in = 0; in < cfg_.ports; ++in) voqs_.emplace_back(in, cfg_.ports);
  out_queue_.resize(static_cast<std::size_t>(cfg_.ports));
  flow_seq_.assign(static_cast<std::size_t>(cfg_.ports) *
                       static_cast<std::size_t>(cfg_.ports),
                   0);
}

CioqResult CioqSwitch::run() {
  sim::Histogram delay_hist;
  sim::ThroughputMeter meter;
  sim::ReorderDetector reorder;
  std::uint64_t violations = 0, opportunities = 0;
  int max_out_occ = 0;

  CioqResult r;
  r.ports = cfg_.ports;
  r.speedup = cfg_.speedup;
  r.offered_load = traffic_->offered_load();

  const std::uint64_t total = cfg_.warmup_slots + cfg_.measure_slots;
  std::vector<int> waiting(static_cast<std::size_t>(cfg_.ports), 0);

  for (std::uint64_t t = 0; t < total; ++t) {
    const bool measuring = t >= cfg_.warmup_slots;

    // Arrivals.
    for (int in = 0; in < cfg_.ports; ++in) {
      sim::Arrival a;
      if (!traffic_->sample(in, a)) continue;
      const std::size_t flow = static_cast<std::size_t>(in) *
                                   static_cast<std::size_t>(cfg_.ports) +
                               static_cast<std::size_t>(a.dst);
      sw::Cell cell;
      cell.src = in;
      cell.dst = a.dst;
      cell.seq = flow_seq_[flow]++;
      cell.arrival_slot = t;
      voqs_[static_cast<std::size_t>(in)].push(cell);
      sched_->request(in, a.dst);
      ++waiting[static_cast<std::size_t>(a.dst)];
    }

    // S matching phases: the crossbar's internal speedup.
    for (int phase = 0; phase < cfg_.speedup; ++phase) {
      for (int out = 0; out < cfg_.ports; ++out) {
        const bool full =
            static_cast<int>(out_queue_[static_cast<std::size_t>(out)]
                                 .size()) >= cfg_.output_buffer_cells;
        if (full)
          sched_->block_output(out);
        else
          sched_->unblock_output(out);
      }
      for (const sw::Grant& g : sched_->tick()) {
        sw::Cell cell =
            voqs_[static_cast<std::size_t>(g.input)].pop(g.output);
        out_queue_[static_cast<std::size_t>(g.output)].push_back(cell);
      }
    }
    for (const auto& q : out_queue_)
      max_out_occ = std::max(max_out_occ, static_cast<int>(q.size()));

    // Egress lines drain one cell per cycle; work-conservation audit:
    // `waiting[out]` counts every cell for `out` anywhere in the switch.
    for (int out = 0; out < cfg_.ports; ++out) {
      auto& q = out_queue_[static_cast<std::size_t>(out)];
      const bool had_work = waiting[static_cast<std::size_t>(out)] > 0;
      if (measuring && had_work) ++opportunities;
      if (!q.empty()) {
        const sw::Cell cell = q.front();
        q.pop_front();
        --waiting[static_cast<std::size_t>(out)];
        reorder.deliver(cell.src, cell.dst, cell.seq);
        if (measuring) {
          delay_hist.add(static_cast<double>(t - cell.arrival_slot) + 1.0);
          meter.add_delivery();
        }
      } else if (had_work) {
        // Output idles while the switch holds a cell for it: the switch
        // is not work-conserving this cycle ([11]).
        if (measuring) ++violations;
      }
    }
    if (measuring)
      meter.advance_slots(1, static_cast<std::uint64_t>(cfg_.ports));
  }

  r.throughput = meter.utilization();
  r.mean_delay = delay_hist.mean();
  r.delivered = delay_hist.count();
  r.work_conservation_violation_rate =
      opportunities
          ? static_cast<double>(violations) / static_cast<double>(opportunities)
          : 0.0;
  r.max_output_occupancy = max_out_occ;
  r.out_of_order = reorder.out_of_order();
  return r;
}

CioqResult run_cioq_uniform(const CioqConfig& cfg, double load,
                            std::uint64_t seed) {
  CioqSwitch s(cfg, sim::make_uniform(cfg.ports, load, seed));
  return s.run();
}

}  // namespace osmosis::baseline
