#pragma once
// Data Vortex deflection-routing network ([10], §II/§VI.D): an
// all-optical multi-stage topology that resolves contention by
// *deflection* instead of buffering, keeping packets in the optical
// domain. The structure is a set of concentric cylinders; a packet
// spirals inward, fixing one destination-address bit per cylinder, and
// is deflected around the current cylinder whenever its inward path is
// occupied. Injection is blocked while the entry node is busy.
//
// The model here keeps the architectural essentials — C = log2(N)+1
// cylinder levels of (height x angle) single-packet nodes, bit-by-bit
// height refinement, deflection on contention, blocking injection — and
// abstracts the exact Data Vortex wiring parity (our deflected packets
// advance one angle step and retry; the real wiring also toggles the
// current height bit, which only changes *which* node retries). The
// properties the paper leans on survive: port count scales freely, no
// buffers exist, unloaded latency is ~log2(N) hops, and per-port
// throughput saturates well below full line rate as deflections multiply
// — measured by this simulator.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/cell.hpp"

namespace osmosis::baseline {

struct DataVortexConfig {
  int ports = 16;     // power of two
  int angles = 5;     // nodes around each cylinder ring
  std::uint64_t warmup_slots = 2'000;
  std::uint64_t measure_slots = 30'000;
};

struct DataVortexResult {
  int ports = 0;
  double offered_load = 0.0;
  double throughput = 0.0;          // delivered / slot / port
  double mean_delay = 0.0;          // injection queue + flight, in slots
  double p99_delay = 0.0;
  double mean_hops = 0.0;           // node-to-node hops in the vortex
  double deflection_rate = 0.0;     // deflections per delivered packet
  std::uint64_t delivered = 0;
  std::uint64_t injection_blocked = 0;  // slots an input stalled
};

class DataVortex {
 public:
  DataVortex(DataVortexConfig cfg, std::unique_ptr<sim::TrafficGen> traffic);

  DataVortexResult run();

 private:
  struct Packet {
    int dst = -1;
    std::uint64_t arrival_slot = 0;
    int hops = 0;
    int deflections = 0;
  };

  int node_index(int cyl, int height, int angle) const;
  /// Height a packet must reach in cylinder `cyl` (top `cyl` bits fixed).
  bool height_matches(int height, int dst, int cyl) const;

  DataVortexConfig cfg_;
  int levels_;  // log2(ports) cylinders + exit level
  std::unique_ptr<sim::TrafficGen> traffic_;
  // occupancy[cyl][height][angle] -> packet or empty
  std::vector<std::optional<Packet>> nodes_;
  std::vector<std::optional<Packet>> next_nodes_;
  std::vector<std::deque<Packet>> inject_queue_;  // per input
  std::vector<std::uint64_t> flow_seq_;
};

DataVortexResult run_vortex_uniform(const DataVortexConfig& cfg, double load,
                                    std::uint64_t seed);

}  // namespace osmosis::baseline
