#include "src/api/endpoint.hpp"

namespace osmosis::api {

bool Endpoint::post_recv(const TaggedRecv& r, InboundMsg* matched_out) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(r, it->tag)) {
      if (matched_out) *matched_out = *it;
      unexpected_.erase(it);
      ++unexpected_matches_;
      return true;
    }
  }
  recvs_.push_back(r);
  return false;
}

bool Endpoint::on_message(const InboundMsg& m, TaggedRecv* matched_out) {
  for (auto it = recvs_.begin(); it != recvs_.end(); ++it) {
    if (matches(*it, m.tag)) {
      if (matched_out) *matched_out = *it;
      recvs_.erase(it);
      ++recv_matches_;
      return true;
    }
  }
  unexpected_.push_back(m);
  if (unexpected_.size() > unexpected_peak_)
    unexpected_peak_ = unexpected_.size();
  return false;
}

}  // namespace osmosis::api
