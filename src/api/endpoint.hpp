#pragma once
// Endpoints and tagged two-sided matching (DESIGN.md §14). An Endpoint
// binds to one HCA port and owns the port's receive side: the list of
// posted tagged receives (matched in post order — FIFO, first match
// wins) and the unexpected-message queue (messages that arrived before a
// matching receive was posted, kept in arrival order). Matching follows
// the libfabric tagged model: a receive posted with (tag, ignore_mask)
// matches a message whose tag agrees on every bit NOT set in the mask —
// ignore_mask == 0 is an exact match, ignore_mask == ~0 a wildcard.
//
// Deterministic by construction: both queues are FIFOs scanned in order,
// so the same sequence of posts and arrivals yields the same matches on
// every run, at any campaign thread count, and across checkpoint/resume.

#include <cstdint>
#include <deque>

#include "src/ckpt/archive.hpp"

namespace osmosis::api {

/// One posted tagged receive.
struct TaggedRecv {
  std::uint64_t tag = 0;
  std::uint64_t ignore_mask = 0;  // bits of the tag to disregard
  std::uint64_t context = 0;      // caller cookie, echoed in the completion

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, tag);
    ckpt::field(a, ignore_mask);
    ckpt::field(a, context);
  }
};

/// A fully reassembled message waiting (or failing to wait) for a recv.
struct InboundMsg {
  std::uint64_t op_id = 0;  // sender's operation id
  int src = -1;             // sending port
  std::uint64_t tag = 0;
  double bytes = 0.0;
  std::uint64_t arrival_slot = 0;  // last cell's delivery slot

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, op_id);
    ckpt::field(a, src);
    ckpt::field(a, tag);
    ckpt::field(a, bytes);
    ckpt::field(a, arrival_slot);
  }
};

class Endpoint {
 public:
  Endpoint() = default;
  explicit Endpoint(int port) : port_(port) {}

  int port() const { return port_; }

  /// The tagged-matching predicate: tags agree on every bit outside the
  /// receive's ignore mask.
  static bool matches(const TaggedRecv& r, std::uint64_t msg_tag) {
    return ((r.tag ^ msg_tag) & ~r.ignore_mask) == 0;
  }

  /// Posts a receive. If an unexpected message already matches, the
  /// oldest such message is consumed into `matched_out` and the receive
  /// completes immediately (returns true); otherwise the receive joins
  /// the posted list (returns false).
  bool post_recv(const TaggedRecv& r, InboundMsg* matched_out);

  /// A reassembled message arrived. If a posted receive matches, the
  /// first-posted such receive is consumed into `matched_out` (returns
  /// true); otherwise the message joins the unexpected queue (returns
  /// false).
  bool on_message(const InboundMsg& m, TaggedRecv* matched_out);

  std::size_t posted_recvs() const { return recvs_.size(); }
  std::size_t unexpected_depth() const { return unexpected_.size(); }
  std::size_t unexpected_peak() const { return unexpected_peak_; }
  std::uint64_t recv_matches() const { return recv_matches_; }
  std::uint64_t unexpected_matches() const { return unexpected_matches_; }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, port_);
    ckpt::field(a, recvs_);
    ckpt::field(a, unexpected_);
    ckpt::field(a, recv_matches_);
    ckpt::field(a, unexpected_matches_);
    ckpt::field(a, unexpected_peak_);
  }

 private:
  int port_ = -1;
  std::deque<TaggedRecv> recvs_;      // post order
  std::deque<InboundMsg> unexpected_; // arrival order
  std::uint64_t recv_matches_ = 0;        // matched against a posted recv
  std::uint64_t unexpected_matches_ = 0;  // matched out of the unexpected q
  std::size_t unexpected_peak_ = 0;
};

}  // namespace osmosis::api
