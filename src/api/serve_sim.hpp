#pragma once
// ServeSim: the libfabric-flavored serving front-end over the OSMOSIS
// switch (DESIGN.md §14). Wires per-port Endpoints, bounded completion
// queues, the MemoryRegion registry, and per-port Segmenters onto one
// sw::SwitchSim, and optionally drives the whole thing from an open-loop
// client population (api::OpenLoopDriver) with per-tenant token-bucket
// admission at the source.
//
// Operation model (all latencies in cell slots, issue -> settlement):
//   send_tagged  — message src -> dst; tx completion at last-cell
//                  delivery; rx side runs tagged matching (posted-recv
//                  FIFO first, else the unexpected queue).
//   rma_write    — data message carrying (key, offset); validated
//                  against the MR registry at the target on arrival;
//                  initiator completion (ok or error) at that slot.
//   rma_read     — one-cell control request to the target; a valid MR
//                  spawns the data response back to the initiator, whose
//                  last-cell arrival completes the read. MR violations
//                  complete immediately with kRmaError.
//
// Determinism & checkpointing: every queue is a FIFO, the only RNG lives
// in the open-loop driver, and all serving state (op table, segmenters,
// endpoints, CQs, MRs, ledgers, driver) serializes through the switch's
// "switch.traffic" checkpoint chunk — so the campaign runner's existing
// save/resume machinery covers serving jobs unchanged, and a resumed run
// reproduces the uninterrupted report byte for byte.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/api/completion.hpp"
#include "src/api/endpoint.hpp"
#include "src/api/memory.hpp"
#include "src/api/openloop.hpp"
#include "src/ckpt/ckpt.hpp"
#include "src/host/admission.hpp"
#include "src/host/message.hpp"
#include "src/phy/guard_time.hpp"
#include "src/sim/stats.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/telemetry/run_report.hpp"

namespace osmosis::api {

struct ServeSimConfig {
  sw::SwitchSimConfig sw;  // on_delivery must be unset (ServeSim owns it)
  phy::CellFormat cell = phy::demonstrator_cell_format();
  std::size_t cq_capacity = 1024;
  // Driver mode: wildcard receives kept armed per endpoint. Re-arming
  // runs only every recv_rearm_every slots — a cadence > 1 deliberately
  // lets arrivals overtake the posted list now and then, so the
  // unexpected-message path carries real traffic in every serving run.
  int server_recv_depth = 4;
  int recv_rearm_every = 4;
  std::uint64_t mr_bytes_per_port = 1 << 20;  // driver-mode MR size
  std::uint64_t seed = 1;                     // open-loop driver RNG
  OpenLoopConfig openloop;  // clients == 0: manual API only
  // Per-tenant serving admission: margin_pct % of total port capacity,
  // split evenly across tenants, as each tenant's token-bucket rate.
  host::AdmissionConfig admission;
};

struct ServeSimResult {
  sw::SwitchSimResult cell_level;
  std::uint64_t offered = 0;    // requests generated (or API calls made)
  std::uint64_t accepted = 0;   // admitted into a segmenter
  std::uint64_t shed = 0;       // rejected by admission (offered-accepted)
  std::uint64_t delivered = 0;  // settled (completion generated)
  std::uint64_t sends = 0;
  std::uint64_t rma_writes = 0;
  std::uint64_t rma_reads = 0;
  std::uint64_t rma_errors = 0;
  std::uint64_t cq_overruns = 0;
  // End-to-end request latency in cell slots (measured window only).
  double mean_latency = 0.0;
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double p999_latency = 0.0;
};

class ServeSim {
 public:
  explicit ServeSim(ServeSimConfig cfg);

  // ---- data-transfer API (usable directly by tests; the open-loop
  // driver funnels through the same calls) -----------------------------
  // All return the operation id (> 0), or 0 when admission shed the
  // request. `tenant` attributes the work; `client` (when >= 0) ties the
  // op to an open-loop client for outstanding-window accounting.

  std::uint64_t send_tagged(int src, int dst, std::uint64_t tag,
                            double bytes, std::uint64_t context = 0,
                            int tenant = 0, bool control = false,
                            std::int64_t client = -1);
  void post_recv(int port, std::uint64_t tag, std::uint64_t ignore_mask,
                 std::uint64_t context = 0);
  std::uint64_t register_mr(int port, std::uint64_t length) {
    return mr_.register_region(port, length);
  }
  std::uint64_t rma_write(int src, int dst, std::uint64_t key,
                          std::uint64_t offset, double bytes,
                          std::uint64_t context = 0, int tenant = 0,
                          std::int64_t client = -1);
  std::uint64_t rma_read(int src, int dst, std::uint64_t key,
                         std::uint64_t offset, double bytes,
                         std::uint64_t context = 0, int tenant = 0,
                         std::int64_t client = -1);

  Endpoint& endpoint(int port) {
    return endpoints_[static_cast<std::size_t>(port)];
  }
  CompletionQueue& tx_cq(int port) {
    return tx_cqs_[static_cast<std::size_t>(port)];
  }
  CompletionQueue& rx_cq(int port) {
    return rx_cqs_[static_cast<std::size_t>(port)];
  }
  MemoryRegistry& memory() { return mr_; }
  const OpenLoopDriver& driver() const { return driver_; }
  host::AdmissionControl& admission() { return admission_; }
  int tenants() const { return tenants_; }
  std::size_t ops_in_flight() const { return ops_.size(); }

  // ---- run loop (mirrors sw::SwitchSim) -------------------------------
  bool advance_slot() { return sw_->advance_slot(); }
  ServeSimResult finalize();
  ServeSimResult run();
  std::uint64_t current_slot() const { return sw_->current_slot(); }

  /// osmosis.ckpt.v1: serving state rides inside the switch's
  /// "switch.traffic" chunk. Load expects a ServeSim freshly built from
  /// the same config.
  void save_state(ckpt::Writer& w) const { sw_->save_state(w); }
  void load_state(const ckpt::Reader& r) { sw_->load_state(r); }

  /// Switch report plus the "serving" section (per-tenant ledgers,
  /// latency tails) and a "serving.latency" histogram entry.
  telemetry::RunReport report() const;
  telemetry::ServingReport serving_report() const;
  const sim::Histogram& latency_histogram() const { return latency_; }

  sw::SwitchSim& switch_sim() { return *sw_; }

 private:
  class Source;

  enum class OpKind : std::uint8_t {
    kSend = 0,
    kRmaWrite = 1,
    kRmaReadReq = 2,   // initiator -> target control request
    kRmaReadResp = 3,  // target -> initiator data response
  };

  struct OpInfo {
    OpKind kind = OpKind::kSend;
    int src = -1;  // message direction (response ops travel target ->
    int dst = -1;  // initiator, so dst is the completing port there)
    int tenant = 0;
    std::int64_t client = -1;
    std::uint64_t tag = 0;
    std::uint64_t context = 0;
    std::uint64_t mr_key = 0;
    std::uint64_t mr_offset = 0;
    double bytes = 0.0;
    int cells_left = 0;
    std::uint64_t issue_slot = 0;  // original request's issue slot
    std::uint64_t parent = 0;      // read response -> request op id
    bool counted = false;          // issued inside the measured window

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, kind);
      ckpt::field(a, src);
      ckpt::field(a, dst);
      ckpt::field(a, tenant);
      ckpt::field(a, client);
      ckpt::field(a, tag);
      ckpt::field(a, context);
      ckpt::field(a, mr_key);
      ckpt::field(a, mr_offset);
      ckpt::field(a, bytes);
      ckpt::field(a, cells_left);
      ckpt::field(a, issue_slot);
      ckpt::field(a, parent);
      ckpt::field(a, counted);
    }
  };

  void on_slot();  // serving-layer clock tick (slot_)
  void on_delivery(const sw::Cell& cell, std::uint64_t t);
  void settle(std::uint64_t op_id, const OpInfo& info, std::uint64_t t);
  void record_settled(const OpInfo& info, std::uint64_t t);
  void issue_request(const Request& r);
  std::uint64_t post_op(OpInfo info, double wire_bytes, bool control);
  bool admit(int tenant, int cells);

  template <class Ar>
  void io_serving(Ar& a);

  ServeSimConfig cfg_;
  int tenants_ = 1;
  int cells_per_request_ = 1;
  std::vector<host::Segmenter> segmenters_;  // per port
  std::vector<Endpoint> endpoints_;          // per port
  std::vector<CompletionQueue> tx_cqs_;      // per port
  std::vector<CompletionQueue> rx_cqs_;      // per port
  MemoryRegistry mr_;
  OpenLoopDriver driver_;
  host::AdmissionControl admission_;
  std::vector<std::uint64_t> port_mr_key_;  // driver-mode MR per port
  std::map<std::uint64_t, OpInfo> ops_;     // in flight, by op id
  std::uint64_t op_seq_ = 1;
  std::uint64_t slot_ = 0;  // serving clock: slots on_slot() has run
  std::vector<Request> scratch_;

  // Ledgers (whole run, all phases; latency is measured-window only).
  std::vector<std::uint64_t> t_offered_;
  std::vector<std::uint64_t> t_accepted_;
  std::vector<std::uint64_t> t_delivered_;
  std::vector<std::uint64_t> t_shed_;
  std::vector<sim::Histogram> t_latency_;
  sim::Histogram latency_;
  std::uint64_t sends_ = 0;
  std::uint64_t rma_writes_ = 0;
  std::uint64_t rma_reads_ = 0;
  std::uint64_t rma_errors_ = 0;
  std::uint64_t cq_drained_ = 0;  // entries popped by the driver loop

  std::unique_ptr<sw::SwitchSim> sw_;
};

}  // namespace osmosis::api
