#include "src/api/serve_sim.hpp"

#include <algorithm>
#include <utility>

#include "src/util/log.hpp"

namespace osmosis::api {

/// Adapts the per-port segmenters to the switch's TrafficGen interface.
/// SwitchSim samples inputs 0..N-1 once per slot in order; input 0's
/// sample ticks the serving-layer clock (CQ drain, recv re-arm, open-loop
/// arrivals, admission refill). Implements the checkpoint hooks — the
/// entire serving state rides in the switch's "switch.traffic" chunk.
class ServeSim::Source final : public sim::TrafficGen {
 public:
  explicit Source(ServeSim& owner) : owner_(owner) {}

  int ports() const override {
    return static_cast<int>(owner_.segmenters_.size());
  }
  double offered_load() const override {
    return owner_.driver_.active() ? owner_.cfg_.openloop.load : 0.0;
  }

  bool sample(int input, sim::Arrival& out) override {
    if (input == 0) owner_.on_slot();
    host::Segmenter& seg =
        owner_.segmenters_[static_cast<std::size_t>(input)];
    std::uint64_t op_id;
    int dst;
    bool control, last;
    if (!seg.next_cell(op_id, dst, control, last)) return false;
    out.dst = dst;
    out.cls =
        control ? sim::TrafficClass::kControl : sim::TrafficClass::kData;
    out.tag = op_id;
    return true;
  }

  void save_state(ckpt::Sink& s) const override { owner_.io_serving(s); }
  void load_state(ckpt::Source& s) override { owner_.io_serving(s); }

 private:
  ServeSim& owner_;
};

ServeSim::ServeSim(ServeSimConfig cfg)
    : cfg_(std::move(cfg)), latency_(256.0) {
  const int ports = cfg_.sw.ports;
  OSMOSIS_REQUIRE(ports >= 2, "ServeSim needs >= 2 ports");
  OSMOSIS_REQUIRE(!cfg_.sw.on_delivery,
                  "ServeSim owns the switch delivery callback");
  OSMOSIS_REQUIRE(cfg_.cell.feasible(), "infeasible cell format");
  tenants_ = cfg_.openloop.tenants;
  OSMOSIS_REQUIRE(tenants_ >= 1 && tenants_ <= 64,
                  "tenants must be in 1..64");
  OSMOSIS_REQUIRE(cfg_.server_recv_depth >= 1 && cfg_.recv_rearm_every >= 1,
                  "recv depth and re-arm cadence must be >= 1");

  segmenters_.reserve(static_cast<std::size_t>(ports));
  endpoints_.reserve(static_cast<std::size_t>(ports));
  tx_cqs_.reserve(static_cast<std::size_t>(ports));
  rx_cqs_.reserve(static_cast<std::size_t>(ports));
  for (int p = 0; p < ports; ++p) {
    segmenters_.emplace_back(cfg_.cell.user_bytes());
    endpoints_.emplace_back(p);
    tx_cqs_.emplace_back(cfg_.cq_capacity);
    rx_cqs_.emplace_back(cfg_.cq_capacity);
  }
  cells_per_request_ = segmenters_[0].cells_for(cfg_.openloop.request_bytes);

  t_offered_.assign(static_cast<std::size_t>(tenants_), 0);
  t_accepted_.assign(static_cast<std::size_t>(tenants_), 0);
  t_delivered_.assign(static_cast<std::size_t>(tenants_), 0);
  t_shed_.assign(static_cast<std::size_t>(tenants_), 0);
  t_latency_.reserve(static_cast<std::size_t>(tenants_));
  for (int t = 0; t < tenants_; ++t) t_latency_.emplace_back(256.0);

  admission_ = host::AdmissionControl(cfg_.admission, tenants_);
  if (cfg_.admission.enabled) {
    // Serving rate: margin_pct % of total port capacity, split evenly
    // across tenants, in micro-cells per slot.
    const std::int64_t rate = host::AdmissionControl::kCellCost *
                              static_cast<std::int64_t>(ports) *
                              cfg_.admission.margin_pct /
                              (static_cast<std::int64_t>(tenants_) * 100);
    admission_.set_rate(std::max<std::int64_t>(rate, 1));
    OSMOSIS_REQUIRE(
        cfg_.admission.burst_cells >= cells_per_request_ + 1,
        "admission burst depth ("
            << cfg_.admission.burst_cells
            << " cells) must cover at least one request plus its read "
               "request cell ("
            << cells_per_request_ + 1 << ")");
  }

  if (cfg_.openloop.clients > 0) {
    driver_ = OpenLoopDriver(cfg_.openloop, ports, cells_per_request_,
                             cfg_.seed);
    OSMOSIS_REQUIRE(
        static_cast<double>(cfg_.mr_bytes_per_port) >=
            2.0 * cfg_.openloop.request_bytes,
        "driver-mode MR must hold at least two requests");
    port_mr_key_.reserve(static_cast<std::size_t>(ports));
    for (int p = 0; p < ports; ++p)
      port_mr_key_.push_back(
          mr_.register_region(p, cfg_.mr_bytes_per_port));
    // Initial arming: the steady-state wildcard recv pool per endpoint.
    for (int p = 0; p < ports; ++p)
      for (int i = 0; i < cfg_.server_recv_depth; ++i)
        post_recv(p, 0, ~std::uint64_t{0}, 0);
  }

  sw::SwitchSimConfig swc = cfg_.sw;
  swc.on_delivery = [this](const sw::Cell& cell, std::uint64_t t) {
    on_delivery(cell, t);
  };
  sw_ = std::make_unique<sw::SwitchSim>(swc, std::make_unique<Source>(*this));
}

bool ServeSim::admit(int tenant, int cells) {
  if (!cfg_.admission.enabled) return true;
  return admission_.admit_request(tenant, cells);
}

std::uint64_t ServeSim::post_op(OpInfo info, double wire_bytes,
                                bool control) {
  host::Segmenter& seg = segmenters_[static_cast<std::size_t>(info.src)];
  info.cells_left = seg.cells_for(wire_bytes);
  const std::uint64_t id = op_seq_++;
  host::Message m;
  m.src = info.src;
  m.dst = info.dst;
  m.id = id;
  m.bytes = wire_bytes;
  m.post_slot = slot_;
  m.control = control;
  seg.post(m);
  ops_.emplace(id, info);
  return id;
}

std::uint64_t ServeSim::send_tagged(int src, int dst, std::uint64_t tag,
                                    double bytes, std::uint64_t context,
                                    int tenant, bool control,
                                    std::int64_t client) {
  OSMOSIS_REQUIRE(src >= 0 && src < cfg_.sw.ports && dst >= 0 &&
                      dst < cfg_.sw.ports && src != dst,
                  "bad send ports " << src << " -> " << dst);
  OSMOSIS_REQUIRE(tenant >= 0 && tenant < tenants_, "bad tenant " << tenant);
  OSMOSIS_REQUIRE(bytes > 0.0, "send needs a positive payload");
  ++t_offered_[static_cast<std::size_t>(tenant)];
  const int cells =
      segmenters_[static_cast<std::size_t>(src)].cells_for(bytes);
  if (!admit(tenant, cells)) {
    ++t_shed_[static_cast<std::size_t>(tenant)];
    return 0;
  }
  ++t_accepted_[static_cast<std::size_t>(tenant)];
  ++sends_;
  if (client >= 0) driver_.note_issue(client);
  OpInfo info;
  info.kind = OpKind::kSend;
  info.src = src;
  info.dst = dst;
  info.tenant = tenant;
  info.client = client;
  info.tag = tag;
  info.context = context;
  info.bytes = bytes;
  info.issue_slot = slot_;
  info.counted = slot_ >= cfg_.sw.warmup_slots;
  return post_op(info, bytes, control);
}

void ServeSim::post_recv(int port, std::uint64_t tag,
                         std::uint64_t ignore_mask, std::uint64_t context) {
  OSMOSIS_REQUIRE(port >= 0 && port < cfg_.sw.ports, "bad port " << port);
  TaggedRecv r;
  r.tag = tag;
  r.ignore_mask = ignore_mask;
  r.context = context;
  InboundMsg m;
  if (endpoints_[static_cast<std::size_t>(port)].post_recv(r, &m)) {
    // An unexpected message was already waiting: the receive completes
    // now, at the serving clock, not at the message's arrival slot.
    Completion c;
    c.op_id = m.op_id;
    c.kind = CompletionKind::kRecv;
    c.peer = m.src;
    c.tag = m.tag;
    c.bytes = m.bytes;
    c.slot = slot_;
    c.context = context;
    rx_cqs_[static_cast<std::size_t>(port)].push(c);
  }
}

std::uint64_t ServeSim::rma_write(int src, int dst, std::uint64_t key,
                                  std::uint64_t offset, double bytes,
                                  std::uint64_t context, int tenant,
                                  std::int64_t client) {
  OSMOSIS_REQUIRE(src >= 0 && src < cfg_.sw.ports && dst >= 0 &&
                      dst < cfg_.sw.ports && src != dst,
                  "bad rma ports " << src << " -> " << dst);
  OSMOSIS_REQUIRE(tenant >= 0 && tenant < tenants_, "bad tenant " << tenant);
  OSMOSIS_REQUIRE(bytes > 0.0, "rma_write needs a positive payload");
  ++t_offered_[static_cast<std::size_t>(tenant)];
  const int cells =
      segmenters_[static_cast<std::size_t>(src)].cells_for(bytes);
  if (!admit(tenant, cells)) {
    ++t_shed_[static_cast<std::size_t>(tenant)];
    return 0;
  }
  ++t_accepted_[static_cast<std::size_t>(tenant)];
  ++rma_writes_;
  if (client >= 0) driver_.note_issue(client);
  OpInfo info;
  info.kind = OpKind::kRmaWrite;
  info.src = src;
  info.dst = dst;
  info.tenant = tenant;
  info.client = client;
  info.context = context;
  info.mr_key = key;
  info.mr_offset = offset;
  info.bytes = bytes;
  info.issue_slot = slot_;
  info.counted = slot_ >= cfg_.sw.warmup_slots;
  return post_op(info, bytes, /*control=*/false);
}

std::uint64_t ServeSim::rma_read(int src, int dst, std::uint64_t key,
                                 std::uint64_t offset, double bytes,
                                 std::uint64_t context, int tenant,
                                 std::int64_t client) {
  OSMOSIS_REQUIRE(src >= 0 && src < cfg_.sw.ports && dst >= 0 &&
                      dst < cfg_.sw.ports && src != dst,
                  "bad rma ports " << src << " -> " << dst);
  OSMOSIS_REQUIRE(tenant >= 0 && tenant < tenants_, "bad tenant " << tenant);
  OSMOSIS_REQUIRE(bytes > 0.0, "rma_read needs a positive payload");
  ++t_offered_[static_cast<std::size_t>(tenant)];
  // Fabric footprint of a read: the one-cell control request plus the
  // data response — charged up front at the initiator's tenant bucket.
  const int cells =
      1 + segmenters_[static_cast<std::size_t>(src)].cells_for(bytes);
  if (!admit(tenant, cells)) {
    ++t_shed_[static_cast<std::size_t>(tenant)];
    return 0;
  }
  ++t_accepted_[static_cast<std::size_t>(tenant)];
  ++rma_reads_;
  if (client >= 0) driver_.note_issue(client);
  OpInfo info;
  info.kind = OpKind::kRmaReadReq;
  info.src = src;
  info.dst = dst;
  info.tenant = tenant;
  info.client = client;
  info.context = context;
  info.mr_key = key;
  info.mr_offset = offset;
  info.bytes = bytes;  // bytes requested; the request itself is one cell
  info.issue_slot = slot_;
  info.counted = slot_ >= cfg_.sw.warmup_slots;
  return post_op(info, /*wire_bytes=*/1.0, /*control=*/true);
}

void ServeSim::on_slot() {
  if (cfg_.admission.enabled) admission_.begin_slot();
  if (driver_.active()) {
    // Serving loop: drain completions, keep the wildcard recv pool
    // armed, then admit this slot's open-loop arrivals.
    Completion c;
    for (auto& q : tx_cqs_)
      while (q.pop(c)) ++cq_drained_;
    for (auto& q : rx_cqs_)
      while (q.pop(c)) ++cq_drained_;
    if (slot_ % static_cast<std::uint64_t>(cfg_.recv_rearm_every) == 0) {
      for (int p = 0; p < cfg_.sw.ports; ++p)
        while (endpoints_[static_cast<std::size_t>(p)].posted_recvs() <
               static_cast<std::size_t>(cfg_.server_recv_depth))
          post_recv(p, 0, ~std::uint64_t{0}, 0);
    }
    driver_.poll(slot_, scratch_);
    for (const Request& r : scratch_) issue_request(r);
  }
  ++slot_;
}

void ServeSim::issue_request(const Request& r) {
  const double bytes = cfg_.openloop.request_bytes;
  // Tag carries (tenant, client): servers match wildcard, but the tag is
  // what a tenant-scoped receive would key on.
  const std::uint64_t tag =
      (static_cast<std::uint64_t>(r.tenant) << 56) |
      (static_cast<std::uint64_t>(r.client) & 0x00FF'FFFF'FFFF'FFFFULL);
  const std::uint64_t context = static_cast<std::uint64_t>(r.client);
  if (r.rma) {
    const std::uint64_t key =
        port_mr_key_[static_cast<std::size_t>(r.dst)];
    // Deterministic region placement: client-striped, always in bounds.
    const std::uint64_t span =
        cfg_.mr_bytes_per_port -
        static_cast<std::uint64_t>(cfg_.openloop.request_bytes);
    const std::uint64_t offset =
        (static_cast<std::uint64_t>(r.client) * 4096) % std::max<std::uint64_t>(span, 1);
    if (r.read)
      rma_read(r.src, r.dst, key, offset, bytes, context, r.tenant,
               r.client);
    else
      rma_write(r.src, r.dst, key, offset, bytes, context, r.tenant,
                r.client);
  } else {
    send_tagged(r.src, r.dst, tag, bytes, context, r.tenant,
                /*control=*/false, r.client);
  }
}

void ServeSim::on_delivery(const sw::Cell& cell, std::uint64_t t) {
  if (cell.tag == 0) return;  // not a serving-layer cell
  auto it = ops_.find(cell.tag);
  OSMOSIS_REQUIRE(it != ops_.end(),
                  "delivery for unknown operation " << cell.tag);
  if (--it->second.cells_left > 0) return;
  const OpInfo info = it->second;
  const std::uint64_t op_id = it->first;
  ops_.erase(it);
  settle(op_id, info, t);
}

void ServeSim::settle(std::uint64_t op_id, const OpInfo& info,
                      std::uint64_t t) {
  switch (info.kind) {
    case OpKind::kSend: {
      Completion c;
      c.op_id = op_id;
      c.kind = CompletionKind::kSend;
      c.peer = info.dst;
      c.tag = info.tag;
      c.bytes = info.bytes;
      c.slot = t;
      c.context = info.context;
      tx_cqs_[static_cast<std::size_t>(info.src)].push(c);
      // Receive side: tagged matching at the destination endpoint.
      InboundMsg m;
      m.op_id = op_id;
      m.src = info.src;
      m.tag = info.tag;
      m.bytes = info.bytes;
      m.arrival_slot = t;
      TaggedRecv r;
      if (endpoints_[static_cast<std::size_t>(info.dst)].on_message(m, &r)) {
        Completion rc;
        rc.op_id = op_id;
        rc.kind = CompletionKind::kRecv;
        rc.peer = info.src;
        rc.tag = info.tag;
        rc.bytes = info.bytes;
        rc.slot = t;
        rc.context = r.context;
        rx_cqs_[static_cast<std::size_t>(info.dst)].push(rc);
      }
      record_settled(info, t);
      break;
    }
    case OpKind::kRmaWrite: {
      const RmaVerdict v =
          mr_.check(info.mr_key, info.dst, info.mr_offset, info.bytes);
      if (v == RmaVerdict::kOk)
        mr_.note_write(info.mr_key, info.bytes);
      else
        ++rma_errors_;
      Completion c;
      c.op_id = op_id;
      c.kind = CompletionKind::kRmaWrite;
      c.status = v == RmaVerdict::kOk ? CompletionStatus::kOk
                                      : CompletionStatus::kRmaError;
      c.peer = info.dst;
      c.tag = info.mr_key;
      c.bytes = info.bytes;
      c.slot = t;
      c.context = info.context;
      tx_cqs_[static_cast<std::size_t>(info.src)].push(c);
      record_settled(info, t);
      break;
    }
    case OpKind::kRmaReadReq: {
      const RmaVerdict v =
          mr_.check(info.mr_key, info.dst, info.mr_offset, info.bytes);
      if (v != RmaVerdict::kOk) {
        // Invalid read: error completion straight back to the initiator
        // at the request's arrival slot — no response travels.
        ++rma_errors_;
        Completion c;
        c.op_id = op_id;
        c.kind = CompletionKind::kRmaRead;
        c.status = CompletionStatus::kRmaError;
        c.peer = info.dst;
        c.tag = info.mr_key;
        c.bytes = info.bytes;
        c.slot = t;
        c.context = info.context;
        tx_cqs_[static_cast<std::size_t>(info.src)].push(c);
        record_settled(info, t);
        break;
      }
      mr_.note_read(info.mr_key, info.bytes);
      // Spawn the data response target -> initiator. The read settles
      // when the response's last cell arrives back.
      OpInfo resp = info;
      resp.kind = OpKind::kRmaReadResp;
      resp.src = info.dst;
      resp.dst = info.src;
      resp.parent = op_id;
      post_op(resp, info.bytes, /*control=*/false);
      break;
    }
    case OpKind::kRmaReadResp: {
      Completion c;
      c.op_id = info.parent;
      c.kind = CompletionKind::kRmaRead;
      c.peer = info.src;  // the target that served the read
      c.tag = info.mr_key;
      c.bytes = info.bytes;
      c.slot = t;
      c.context = info.context;
      // The response completes at the initiator, which is this
      // message's destination.
      tx_cqs_[static_cast<std::size_t>(info.dst)].push(c);
      record_settled(info, t);
      break;
    }
  }
}

void ServeSim::record_settled(const OpInfo& info, std::uint64_t t) {
  ++t_delivered_[static_cast<std::size_t>(info.tenant)];
  if (info.client >= 0) driver_.note_complete(info.client);
  if (info.counted) {
    const double cycles = static_cast<double>(t - info.issue_slot) + 1.0;
    latency_.add(cycles);
    t_latency_[static_cast<std::size_t>(info.tenant)].add(cycles);
  }
}

ServeSimResult ServeSim::finalize() {
  ServeSimResult r;
  r.cell_level = sw_->finalize();
  for (int t = 0; t < tenants_; ++t) {
    r.offered += t_offered_[static_cast<std::size_t>(t)];
    r.accepted += t_accepted_[static_cast<std::size_t>(t)];
    r.shed += t_shed_[static_cast<std::size_t>(t)];
    r.delivered += t_delivered_[static_cast<std::size_t>(t)];
  }
  r.sends = sends_;
  r.rma_writes = rma_writes_;
  r.rma_reads = rma_reads_;
  r.rma_errors = rma_errors_;
  for (const auto& q : tx_cqs_) r.cq_overruns += q.overruns();
  for (const auto& q : rx_cqs_) r.cq_overruns += q.overruns();
  r.mean_latency = latency_.mean();
  r.p50_latency = latency_.p50();
  r.p99_latency = latency_.p99();
  r.p999_latency = latency_.p999();
  return r;
}

ServeSimResult ServeSim::run() {
  while (advance_slot()) {
  }
  return finalize();
}

telemetry::ServingReport ServeSim::serving_report() const {
  telemetry::ServingReport s;
  s.arrival =
      driver_.active() ? to_string(cfg_.openloop.arrival) : "manual";
  s.latency = telemetry::HistogramSummary::of(latency_);

  std::uint64_t offered = 0, accepted = 0, delivered = 0, shed = 0;
  for (int t = 0; t < tenants_; ++t) {
    telemetry::ServingTenantRow row;
    row.tenant = t;
    row.offered = t_offered_[static_cast<std::size_t>(t)];
    row.accepted = t_accepted_[static_cast<std::size_t>(t)];
    row.delivered = t_delivered_[static_cast<std::size_t>(t)];
    row.shed = t_shed_[static_cast<std::size_t>(t)];
    row.latency = telemetry::HistogramSummary::of(
        t_latency_[static_cast<std::size_t>(t)]);
    s.tenants.push_back(row);
    offered += row.offered;
    accepted += row.accepted;
    delivered += row.delivered;
    shed += row.shed;
  }

  std::uint64_t cq_pushed = 0, cq_popped = 0, cq_overruns = 0;
  std::size_t cq_peak = 0;
  for (const auto* qs : {&tx_cqs_, &rx_cqs_})
    for (const auto& q : *qs) {
      cq_pushed += q.pushed();
      cq_popped += q.popped();
      cq_overruns += q.overruns();
      cq_peak = std::max(cq_peak, q.peak_depth());
    }
  std::uint64_t recv_matches = 0, unexpected_matches = 0;
  std::size_t unexpected_peak = 0;
  for (const auto& e : endpoints_) {
    recv_matches += e.recv_matches();
    unexpected_matches += e.unexpected_matches();
    unexpected_peak = std::max(unexpected_peak, e.unexpected_peak());
  }

  auto put = [&](const char* k, double v) { s.summary[k] = v; };
  put("clients", static_cast<double>(
                     driver_.active() ? cfg_.openloop.clients : 0));
  put("tenants", static_cast<double>(tenants_));
  put("offered", static_cast<double>(offered));
  put("accepted", static_cast<double>(accepted));
  put("shed", static_cast<double>(shed));
  put("delivered", static_cast<double>(delivered));
  put("inflight", static_cast<double>(accepted - delivered));
  put("sends", static_cast<double>(sends_));
  put("rma_writes", static_cast<double>(rma_writes_));
  put("rma_reads", static_cast<double>(rma_reads_));
  put("rma_errors", static_cast<double>(rma_errors_));
  put("cq_pushed", static_cast<double>(cq_pushed));
  put("cq_popped", static_cast<double>(cq_popped));
  put("cq_overruns", static_cast<double>(cq_overruns));
  put("cq_peak_depth", static_cast<double>(cq_peak));
  put("recv_matches", static_cast<double>(recv_matches));
  put("unexpected_matches", static_cast<double>(unexpected_matches));
  put("unexpected_peak", static_cast<double>(unexpected_peak));
  put("active_clients", static_cast<double>(driver_.active_clients()));
  put("max_outstanding", static_cast<double>(driver_.max_outstanding()));
  put("admission_shed", static_cast<double>(admission_.shed_total()));
  put("mr_regions", static_cast<double>(mr_.size()));
  put("mr_bad_key", static_cast<double>(mr_.bad_key()));
  put("mr_bad_bounds", static_cast<double>(mr_.bad_bounds()));
  return s;
}

template <class Ar>
void ServeSim::io_serving(Ar& a) {
  ckpt::field(a, slot_);
  ckpt::field(a, op_seq_);
  ckpt::field(a, ops_);
  // The per-port vectors are fixed-size and their elements carry
  // construction-time shape (segmenter cell size, CQ capacity, histogram
  // bins), so they serialize element-wise over the already-constructed
  // objects instead of through the archive's generic vector path (which
  // default-constructs elements on load).
  for (auto& s : segmenters_) ckpt::field(a, s);
  for (auto& e : endpoints_) ckpt::field(a, e);
  for (auto& q : tx_cqs_) ckpt::field(a, q);
  for (auto& q : rx_cqs_) ckpt::field(a, q);
  ckpt::field(a, mr_);
  ckpt::field(a, port_mr_key_);
  ckpt::field(a, admission_);
  ckpt::field(a, driver_);
  ckpt::field(a, t_offered_);
  ckpt::field(a, t_accepted_);
  ckpt::field(a, t_delivered_);
  ckpt::field(a, t_shed_);
  for (auto& h : t_latency_) ckpt::field(a, h);
  ckpt::field(a, latency_);
  ckpt::field(a, sends_);
  ckpt::field(a, rma_writes_);
  ckpt::field(a, rma_reads_);
  ckpt::field(a, rma_errors_);
  ckpt::field(a, cq_drained_);
  if constexpr (Ar::kLoading) {
    if (t_offered_.size() != static_cast<std::size_t>(tenants_) ||
        port_mr_key_.size() > segmenters_.size())
      throw ckpt::Error(
          "serving checkpoint does not match this ServeSim's geometry");
  }
}

template void ServeSim::io_serving<ckpt::Sink>(ckpt::Sink&);
template void ServeSim::io_serving<ckpt::Source>(ckpt::Source&);

telemetry::RunReport ServeSim::report() const {
  telemetry::RunReport r = sw_->report();
  r.config["serving.clients"] = static_cast<double>(
      driver_.active() ? cfg_.openloop.clients : 0);
  r.config["serving.tenants"] = static_cast<double>(tenants_);
  r.config["serving.cq_capacity"] = static_cast<double>(cfg_.cq_capacity);
  r.config["serving.request_bytes"] = cfg_.openloop.request_bytes;
  r.config["serving.admission"] = cfg_.admission.enabled ? 1.0 : 0.0;
  if (driver_.active()) r.config["serving.load"] = cfg_.openloop.load;
  r.histograms["serving.latency"] =
      telemetry::HistogramSummary::of(latency_);
  r.serving = serving_report();
  return r;
}

}  // namespace osmosis::api
