#include "src/api/openloop.hpp"

#include <cmath>

#include "src/util/log.hpp"

namespace osmosis::api {

const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kMmpp: return "mmpp";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

bool parse_arrival(const std::string& name, ArrivalKind* out) {
  if (name == "poisson") *out = ArrivalKind::kPoisson;
  else if (name == "mmpp") *out = ArrivalKind::kMmpp;
  else if (name == "diurnal") *out = ArrivalKind::kDiurnal;
  else return false;
  return true;
}

OpenLoopDriver::OpenLoopDriver(const OpenLoopConfig& cfg, int ports,
                               int cells_per_request, std::uint64_t seed)
    : cfg_(cfg), ports_(ports), rng_(seed) {
  OSMOSIS_REQUIRE(cfg.clients >= 1, "open-loop driver needs clients >= 1");
  OSMOSIS_REQUIRE(cfg.clients <= (std::int64_t{1} << 26),
                  "clients capped at 64M (per-client state is resident)");
  OSMOSIS_REQUIRE(ports >= 2, "open-loop driver needs >= 2 ports");
  OSMOSIS_REQUIRE(cfg.tenants >= 1 && cfg.tenants <= 64,
                  "tenants must be in 1..64");
  OSMOSIS_REQUIRE(cells_per_request >= 1, "request must be >= 1 cell");
  OSMOSIS_REQUIRE(cfg.load > 0.0, "open-loop load must be positive");
  OSMOSIS_REQUIRE(cfg.rma_fraction >= 0.0 && cfg.rma_fraction <= 1.0 &&
                      cfg.read_fraction >= 0.0 && cfg.read_fraction <= 1.0,
                  "operation-mix fractions must be in [0, 1]");
  OSMOSIS_REQUIRE(cfg.mmpp_burst_factor >= 1.0,
                  "mmpp burst factor must be >= 1");
  OSMOSIS_REQUIRE(cfg.mmpp_p_enter_burst > 0.0 &&
                      cfg.mmpp_p_enter_burst <= 1.0 &&
                      cfg.mmpp_p_leave_burst > 0.0 &&
                      cfg.mmpp_p_leave_burst <= 1.0,
                  "mmpp transition probabilities must be in (0, 1]");
  OSMOSIS_REQUIRE(cfg.diurnal_period_slots >= 2.0,
                  "diurnal period must be >= 2 slots");
  OSMOSIS_REQUIRE(cfg.diurnal_amplitude >= 0.0 &&
                      cfg.diurnal_amplitude < 1.0,
                  "diurnal amplitude must be in [0, 1)");
  // Cell-load target -> aggregate request rate: each request occupies
  // cells_per_request slots on its source port's line.
  mean_rate_ = cfg.load * static_cast<double>(ports) /
               static_cast<double>(cells_per_request);
  std::uint64_t salt_state = seed ^ 0x9E3779B97F4A7C15ULL;
  place_salt_ = sim::splitmix64(salt_state);
  issued_.assign(static_cast<std::size_t>(cfg.clients), 0);
  completed_.assign(static_cast<std::size_t>(cfg.clients), 0);
}

std::uint64_t OpenLoopDriver::poisson(double lambda) {
  // Knuth's product method in chunks of <= 16 (exp(-16) ~ 1.1e-7 keeps
  // the comparison well inside double precision); Poisson additivity
  // makes the chunked sum exact in distribution.
  std::uint64_t k = 0;
  while (lambda > 0.0) {
    const double chunk = lambda > 16.0 ? 16.0 : lambda;
    lambda -= chunk;
    const double limit = std::exp(-chunk);
    double p = rng_.uniform();
    while (p > limit) {
      ++k;
      p *= rng_.uniform();
    }
  }
  return k;
}

double OpenLoopDriver::rate_for_slot(std::uint64_t slot) {
  switch (cfg_.arrival) {
    case ArrivalKind::kPoisson:
      return mean_rate_;
    case ArrivalKind::kMmpp: {
      // Advance the modulator once per slot (one bernoulli draw, always —
      // fixed draw order keeps the stream checkpoint-stable).
      const double p = mmpp_burst_ ? cfg_.mmpp_p_leave_burst
                                   : cfg_.mmpp_p_enter_burst;
      if (rng_.bernoulli(p)) mmpp_burst_ = !mmpp_burst_;
      // Rates chosen so the stationary mean equals mean_rate_: the chain
      // spends pi_b = p_enter / (p_enter + p_leave) of its time bursting.
      const double pi_b = cfg_.mmpp_p_enter_burst /
                          (cfg_.mmpp_p_enter_burst + cfg_.mmpp_p_leave_burst);
      const double base =
          mean_rate_ / (1.0 + pi_b * (cfg_.mmpp_burst_factor - 1.0));
      return mmpp_burst_ ? base * cfg_.mmpp_burst_factor : base;
    }
    case ArrivalKind::kDiurnal: {
      const double phase = 2.0 * 3.14159265358979323846 *
                           static_cast<double>(slot) /
                           cfg_.diurnal_period_slots;
      return mean_rate_ * (1.0 + cfg_.diurnal_amplitude * std::sin(phase));
    }
  }
  return mean_rate_;
}

void OpenLoopDriver::poll(std::uint64_t slot, std::vector<Request>& out) {
  out.clear();
  const std::uint64_t n = poisson(rate_for_slot(slot));
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Request r;
    r.client = static_cast<std::int64_t>(
        rng_.uniform_int(static_cast<std::uint64_t>(cfg_.clients)));
    r.tenant = static_cast<int>(r.client % cfg_.tenants);
    // Sticky placement: a pure hash of the client id — no per-client
    // storage, stable across the run and across checkpoints.
    std::uint64_t h = place_salt_ ^
                      (static_cast<std::uint64_t>(r.client) *
                       0x9E3779B97F4A7C15ULL);
    const std::uint64_t h1 = sim::splitmix64(h);
    const std::uint64_t h2 = sim::splitmix64(h);
    r.src = static_cast<int>(h1 % static_cast<std::uint64_t>(ports_));
    r.dst = static_cast<int>(
        (static_cast<std::uint64_t>(r.src) + 1 +
         h2 % static_cast<std::uint64_t>(ports_ - 1)) %
        static_cast<std::uint64_t>(ports_));
    r.rma = rng_.bernoulli(cfg_.rma_fraction);
    r.read = r.rma && rng_.bernoulli(cfg_.read_fraction);
    out.push_back(r);
  }
}

void OpenLoopDriver::note_issue(std::int64_t client) {
  auto& iss = issued_[static_cast<std::size_t>(client)];
  if (iss == 0) ++active_clients_;
  ++iss;
  const std::uint32_t outstanding =
      iss - completed_[static_cast<std::size_t>(client)];
  if (outstanding > max_outstanding_) max_outstanding_ = outstanding;
}

void OpenLoopDriver::note_complete(std::int64_t client) {
  auto& done = completed_[static_cast<std::size_t>(client)];
  OSMOSIS_REQUIRE(done < issued_[static_cast<std::size_t>(client)],
                  "completion without a matching issue for client "
                      << client);
  ++done;
}

}  // namespace osmosis::api
