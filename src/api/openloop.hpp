#pragma once
// Open-loop workload driver for the serving front-end (DESIGN.md §14).
//
// Simulates a population of up to millions of clients issuing requests
// into the fabric at a rate that does NOT depend on completions — the
// defining property of open-loop load, and the reason overload shows up
// as shed work rather than as a politely self-throttling generator. Per
// client the driver keeps only two 32-bit counters (issued, completed)
// packed in flat arrays, so a million clients cost 8 MB and no pointer
// chasing. Placement (source port, destination, tenant) is a pure hash
// of the client id, so a client is sticky to its ports across the run.
//
// Arrival processes (aggregate requests per slot):
//   poisson — Poisson(lambda), lambda chosen so the offered cell load
//             matches the configured per-port load.
//   mmpp    — 2-state Markov-modulated Poisson: a background state at a
//             reduced rate and a burst state at burst_factor times it,
//             with geometric dwell times. Same long-run mean as poisson.
//   diurnal — Poisson with a sinusoidal rate envelope (period and
//             amplitude configured) modeling a day/night load cycle
//             compressed into the run.
//
// Determinism: one Rng drawn in a fixed order per slot; the diurnal
// envelope is a pure function of the slot number. Checkpointable via
// io_state (RNG, modulator state, per-client arrays).

#include <cstdint>
#include <string>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/sim/rng.hpp"

namespace osmosis::api {

enum class ArrivalKind : std::uint8_t {
  kPoisson = 0,
  kMmpp = 1,
  kDiurnal = 2,
};

const char* to_string(ArrivalKind k);
/// Parses "poisson" / "mmpp" / "diurnal"; returns false on anything else.
bool parse_arrival(const std::string& name, ArrivalKind* out);

struct OpenLoopConfig {
  std::int64_t clients = 0;  // 0 disables the driver (manual API only)
  int tenants = 4;           // tenant of client c is c % tenants
  ArrivalKind arrival = ArrivalKind::kPoisson;
  // Target offered load in cells per slot per port (line rate = 1.0).
  // Open loop: may exceed what the fabric can carry.
  double load = 0.5;
  double request_bytes = 512.0;  // application payload per request
  // Operation mix: fraction of requests issued one-sided, and of those,
  // the fraction that are reads (the rest are writes). Remaining
  // requests are tagged two-sided sends.
  double rma_fraction = 0.25;
  double read_fraction = 0.25;
  // MMPP modulator: burst-state rate multiplier and per-slot transition
  // probabilities (geometric dwell: mean 1/p slots per state).
  double mmpp_burst_factor = 4.0;
  double mmpp_p_enter_burst = 0.02;
  double mmpp_p_leave_burst = 0.08;
  // Diurnal envelope: rate scaled by 1 + amplitude * sin(2*pi*t/period).
  double diurnal_period_slots = 4096.0;
  double diurnal_amplitude = 0.6;
};

/// One generated request, before admission.
struct Request {
  std::int64_t client = -1;
  int tenant = 0;
  int src = -1;
  int dst = -1;
  bool rma = false;
  bool read = false;  // meaningful only when rma
};

class OpenLoopDriver {
 public:
  OpenLoopDriver() = default;
  /// `cells_per_request`: what one request costs on the wire (from the
  /// segmenter), used to translate the cell-load target into a request
  /// rate. `seed` derives the arrival RNG and the placement hash salt.
  OpenLoopDriver(const OpenLoopConfig& cfg, int ports, int cells_per_request,
                 std::uint64_t seed);

  bool active() const { return cfg_.clients > 0; }
  const OpenLoopConfig& config() const { return cfg_; }

  /// Samples this slot's arrivals into `out` (cleared first). Open loop:
  /// the count depends only on the arrival process, never on outstanding
  /// work.
  void poll(std::uint64_t slot, std::vector<Request>& out);

  /// Bookkeeping: request of `client` was admitted into the fabric.
  void note_issue(std::int64_t client);
  /// Bookkeeping: a request of `client` completed.
  void note_complete(std::int64_t client);

  std::uint64_t issued(std::int64_t client) const {
    return issued_[static_cast<std::size_t>(client)];
  }
  std::uint64_t completed(std::int64_t client) const {
    return completed_[static_cast<std::size_t>(client)];
  }
  /// Clients that issued at least one request.
  std::int64_t active_clients() const { return active_clients_; }
  /// Widest per-client in-flight window seen at any note_issue.
  std::uint32_t max_outstanding() const { return max_outstanding_; }
  /// Long-run mean request rate per slot (all ports combined).
  double mean_rate() const { return mean_rate_; }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, rng_);
    ckpt::field(a, mmpp_burst_);
    ckpt::field(a, issued_);
    ckpt::field(a, completed_);
    ckpt::field(a, active_clients_);
    ckpt::field(a, max_outstanding_);
    if constexpr (Ar::kLoading) {
      if (issued_.size() != completed_.size())
        throw ckpt::Error("OpenLoopDriver arrays inconsistent in checkpoint");
    }
  }

 private:
  /// Deterministic Poisson(lambda) via inversion-free Knuth multiplication,
  /// chunked so the running product stays in double range at any lambda.
  std::uint64_t poisson(double lambda);
  double rate_for_slot(std::uint64_t slot);

  OpenLoopConfig cfg_;
  int ports_ = 0;
  double mean_rate_ = 0.0;      // requests/slot, long-run mean
  std::uint64_t place_salt_ = 0;  // client -> (src, dst) hash salt
  sim::Rng rng_;
  bool mmpp_burst_ = false;
  // Flat per-client state; indexed by client id.
  std::vector<std::uint32_t> issued_;
  std::vector<std::uint32_t> completed_;
  std::int64_t active_clients_ = 0;
  std::uint32_t max_outstanding_ = 0;
};

}  // namespace osmosis::api
