#include "src/api/completion.hpp"

#include "src/util/log.hpp"

namespace osmosis::api {

const char* to_string(CompletionKind k) {
  switch (k) {
    case CompletionKind::kSend: return "send";
    case CompletionKind::kRecv: return "recv";
    case CompletionKind::kRmaWrite: return "rma_write";
    case CompletionKind::kRmaRead: return "rma_read";
  }
  return "?";
}

CompletionQueue::CompletionQueue(std::size_t capacity) : capacity_(capacity) {
  OSMOSIS_REQUIRE(capacity >= 1, "completion queue capacity must be >= 1");
}

bool CompletionQueue::push(const Completion& c) {
  if (entries_.size() >= capacity_) {
    ++overruns_;
    return false;
  }
  entries_.push_back(c);
  ++pushed_;
  if (entries_.size() > peak_depth_) peak_depth_ = entries_.size();
  return true;
}

bool CompletionQueue::pop(Completion& out) {
  if (entries_.empty()) return false;
  out = entries_.front();
  entries_.pop_front();
  ++popped_;
  return true;
}

}  // namespace osmosis::api
