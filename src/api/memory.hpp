#pragma once
// Memory-region registry for one-sided RMA (DESIGN.md §14). A region is
// registered against an owning port and a byte length; the registry hands
// out deterministic keys (a simple counter — remote peers name regions by
// key, the libfabric rkey model). Every one-sided access is validated at
// the target against key existence, ownership, and bounds; violations
// complete the initiating operation with CompletionStatus::kRmaError and
// are tallied here.

#include <cstdint>
#include <map>

#include "src/ckpt/archive.hpp"

namespace osmosis::api {

/// One registered region.
struct MemoryRegion {
  std::uint64_t key = 0;
  int port = -1;            // owning endpoint's port
  std::uint64_t length = 0; // bytes
  // Access statistics (settled operations only).
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  double bytes_written = 0.0;
  double bytes_read = 0.0;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, key);
    ckpt::field(a, port);
    ckpt::field(a, length);
    ckpt::field(a, writes);
    ckpt::field(a, reads);
    ckpt::field(a, bytes_written);
    ckpt::field(a, bytes_read);
  }
};

enum class RmaVerdict : std::uint8_t {
  kOk = 0,
  kBadKey = 1,     // unknown or deregistered key, or wrong target port
  kBadBounds = 2,  // offset + bytes exceeds the region
};

class MemoryRegistry {
 public:
  /// Registers `length` bytes owned by `port`; returns the region key
  /// (keys start at 1 and never recycle, so a stale key is always
  /// detected as kBadKey rather than aliasing a new region).
  std::uint64_t register_region(int port, std::uint64_t length);

  /// Deregisters a key. Returns false if unknown.
  bool deregister(std::uint64_t key);

  /// Region lookup; nullptr when unknown.
  const MemoryRegion* find(std::uint64_t key) const;

  /// Validates an access of `bytes` at `offset` into region `key`, which
  /// must be owned by `target_port`. Tallies violations.
  RmaVerdict check(std::uint64_t key, int target_port, std::uint64_t offset,
                   double bytes);

  /// Access accounting after a settled operation (key must be valid).
  void note_write(std::uint64_t key, double bytes);
  void note_read(std::uint64_t key, double bytes);

  std::size_t size() const { return regions_.size(); }
  std::uint64_t bad_key() const { return bad_key_; }
  std::uint64_t bad_bounds() const { return bad_bounds_; }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, next_key_);
    ckpt::field(a, regions_);
    ckpt::field(a, bad_key_);
    ckpt::field(a, bad_bounds_);
  }

 private:
  std::uint64_t next_key_ = 1;
  std::map<std::uint64_t, MemoryRegion> regions_;
  std::uint64_t bad_key_ = 0;
  std::uint64_t bad_bounds_ = 0;
};

}  // namespace osmosis::api
