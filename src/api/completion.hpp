#pragma once
// Completion queues for the libfabric-flavored serving front-end
// (DESIGN.md §14). Every data-transfer operation posted through an
// api::Endpoint finishes by depositing a slot-stamped Completion into a
// bounded CompletionQueue; a full queue drops the entry and counts an
// overrun (the libfabric FI_ECANCELED-on-overrun model) — statistics are
// recorded out-of-band by ServeSim, so an overrun loses the caller's
// notification, never the accounting. Deterministic and checkpointable
// via io_state.

#include <cstdint>
#include <deque>

#include "src/ckpt/archive.hpp"

namespace osmosis::api {

enum class CompletionKind : std::uint8_t {
  kSend = 0,      // tagged two-sided send, tx side
  kRecv = 1,      // tagged two-sided receive matched, rx side
  kRmaWrite = 2,  // one-sided write settled at the target
  kRmaRead = 3,   // one-sided read data arrived back at the initiator
};

const char* to_string(CompletionKind k);

enum class CompletionStatus : std::uint8_t {
  kOk = 0,
  kRmaError = 1,  // unknown MR key or out-of-bounds access at the target
};

/// One completion-queue entry.
struct Completion {
  std::uint64_t op_id = 0;  // operation that finished (0 = never valid)
  CompletionKind kind = CompletionKind::kSend;
  CompletionStatus status = CompletionStatus::kOk;
  int peer = -1;              // remote port
  std::uint64_t tag = 0;      // message tag (two-sided) or MR key (RMA)
  double bytes = 0.0;         // application payload
  std::uint64_t slot = 0;     // cell slot the completion was generated
  std::uint64_t context = 0;  // caller's opaque cookie

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, op_id);
    ckpt::field(a, kind);
    ckpt::field(a, status);
    ckpt::field(a, peer);
    ckpt::field(a, tag);
    ckpt::field(a, bytes);
    ckpt::field(a, slot);
    ckpt::field(a, context);
  }
};

/// Bounded FIFO completion queue with overrun accounting.
class CompletionQueue {
 public:
  CompletionQueue() = default;
  explicit CompletionQueue(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const { return entries_.size(); }

  /// Deposits an entry. Returns false (and counts an overrun) when the
  /// queue is at capacity; the entry is dropped, FIFO order preserved.
  bool push(const Completion& c);

  /// Pops the oldest entry. Returns false when empty.
  bool pop(Completion& out);

  std::uint64_t pushed() const { return pushed_; }
  std::uint64_t popped() const { return popped_; }
  std::uint64_t overruns() const { return overruns_; }
  std::size_t peak_depth() const { return peak_depth_; }

  /// Capacity is construction config: re-checked on load, never grafted.
  template <class Ar>
  void io_state(Ar& a) {
    std::uint64_t cap = capacity_;
    ckpt::field(a, cap);
    if constexpr (Ar::kLoading) {
      if (cap != capacity_)
        throw ckpt::Error("CompletionQueue capacity mismatch in checkpoint");
    }
    ckpt::field(a, entries_);
    ckpt::field(a, pushed_);
    ckpt::field(a, popped_);
    ckpt::field(a, overruns_);
    ckpt::field(a, peak_depth_);
  }

 private:
  std::size_t capacity_ = 0;
  std::deque<Completion> entries_;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  std::uint64_t overruns_ = 0;
  std::size_t peak_depth_ = 0;
};

}  // namespace osmosis::api
