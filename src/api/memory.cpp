#include "src/api/memory.hpp"

#include "src/util/log.hpp"

namespace osmosis::api {

std::uint64_t MemoryRegistry::register_region(int port,
                                              std::uint64_t length) {
  OSMOSIS_REQUIRE(port >= 0, "memory region needs an owning port");
  OSMOSIS_REQUIRE(length >= 1, "memory region must be at least one byte");
  MemoryRegion r;
  r.key = next_key_++;
  r.port = port;
  r.length = length;
  regions_.emplace(r.key, r);
  return r.key;
}

bool MemoryRegistry::deregister(std::uint64_t key) {
  return regions_.erase(key) > 0;
}

const MemoryRegion* MemoryRegistry::find(std::uint64_t key) const {
  auto it = regions_.find(key);
  return it == regions_.end() ? nullptr : &it->second;
}

RmaVerdict MemoryRegistry::check(std::uint64_t key, int target_port,
                                 std::uint64_t offset, double bytes) {
  auto it = regions_.find(key);
  if (it == regions_.end() || it->second.port != target_port) {
    ++bad_key_;
    return RmaVerdict::kBadKey;
  }
  if (bytes < 0.0 ||
      static_cast<double>(offset) + bytes >
          static_cast<double>(it->second.length)) {
    ++bad_bounds_;
    return RmaVerdict::kBadBounds;
  }
  return RmaVerdict::kOk;
}

void MemoryRegistry::note_write(std::uint64_t key, double bytes) {
  auto it = regions_.find(key);
  OSMOSIS_REQUIRE(it != regions_.end(), "note_write on unknown MR key");
  ++it->second.writes;
  it->second.bytes_written += bytes;
}

void MemoryRegistry::note_read(std::uint64_t key, double bytes) {
  auto it = regions_.find(key);
  OSMOSIS_REQUIRE(it != regions_.end(), "note_read on unknown MR key");
  ++it->second.reads;
  it->second.bytes_read += bytes;
}

}  // namespace osmosis::api
