#include "src/sw/event_switch_sim.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "src/prof/profiler.hpp"
#include "src/util/log.hpp"

namespace osmosis::sw {

namespace {

std::string evs_component(const char* prefix, int a, int b = -1) {
  std::ostringstream oss;
  oss << prefix << '/' << a;
  if (b >= 0) oss << '/' << b;
  return oss.str();
}

std::string evs_fault_key(const faults::FaultEvent& e) {
  std::ostringstream oss;
  oss << faults::to_string(e.kind) << '/' << e.a << '/' << e.b << '@'
      << e.at_slot;
  return oss.str();
}

// The facade's histogram defaults suit cycle-unit values; this sim
// records nanoseconds, so widen an untouched default to the shape the
// sim's own delay histogram uses.
telemetry::TelemetryConfig ns_scaled(telemetry::TelemetryConfig t) {
  if (t.hist_linear_limit == telemetry::TelemetryConfig{}.hist_linear_limit) {
    t.hist_linear_limit = 8192.0;
    t.hist_growth = 1.1;
  }
  return t;
}

}  // namespace

EventSwitchSim::EventSwitchSim(EventSwitchConfig cfg,
                               std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg),
      traffic_(std::move(traffic)),
      telem_(ns_scaled(cfg.telemetry)) {
  OSMOSIS_REQUIRE(cfg_.cell_ns > 0.0, "cell cycle must be positive");
  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == cfg_.ports,
                  "traffic generator port mismatch");
  cfg_.sched.ports = cfg_.ports;
  sched_ = make_scheduler(cfg_.sched);
  {
    chaos::MonitorConfig mc = cfg_.monitor;
    mc.allow_stranded =
        mc.allow_stranded || cfg_.fault_plan.has_permanent_fault();
    mc.expect_drain = cfg_.drain_max_cycles > 0;
    monitor_.configure(mc);
  }
  voqs_.reserve(static_cast<std::size_t>(cfg_.ports));
  for (int in = 0; in < cfg_.ports; ++in) voqs_.emplace_back(in, cfg_.ports);
  egress_.resize(static_cast<std::size_t>(cfg_.ports));
  request_times_.resize(static_cast<std::size_t>(cfg_.ports) *
                        static_cast<std::size_t>(cfg_.ports));
  flow_seq_.assign(static_cast<std::size_t>(cfg_.ports) *
                       static_cast<std::size_t>(cfg_.ports) * 2,
                   0);
  delivered_per_port_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  telem_.series().set_channels({"backlog", "voq_backlog", "voq_max",
                                "egress_backlog", "in_flight", "retry_pending",
                                "throughput"});

  // ---- runtime fault plan ----------------------------------------------
  fibers_ = 1;
  while (fibers_ * fibers_ < cfg_.ports) fibers_ <<= 1;
  OSMOSIS_REQUIRE(cfg_.ports % fibers_ == 0,
                  "port count must factor into fibers * wavelengths");
  wavelengths_ = cfg_.ports / fibers_;
  const int receivers = std::max(1, cfg_.sched.receivers);
  rx_failed_.assign(static_cast<std::size_t>(cfg_.ports),
                    std::vector<std::uint8_t>(
                        static_cast<std::size_t>(receivers), 0));
  input_block_depth_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  for (int f = 0; f < fibers_; ++f)
    health_.declare(evs_component("broadcast", f));
  for (int out = 0; out < cfg_.ports; ++out)
    for (int rx = 0; rx < receivers; ++rx)
      health_.declare(evs_component("module", out, rx));
  for (int in = 0; in < cfg_.ports; ++in) {
    health_.declare(evs_component("adapter", in));
    health_.declare(evs_component("link", in));
  }
  health_.declare("link/all");
  health_.declare("controlpath");
  health_.declare("scheduler");
  if (!cfg_.fault_plan.empty()) {
    OSMOSIS_REQUIRE(cfg_.grant_timeout_cycles >= 1 &&
                        cfg_.arq_timeout_cycles >= 1,
                    "fault-recovery timeouts must be >= 1 cycle");
    for (const faults::FaultEvent& e : cfg_.fault_plan.events()) {
      switch (e.kind) {
        case faults::FaultKind::kModuleDeath:
          OSMOSIS_REQUIRE(e.a >= 0 && e.a < cfg_.ports && e.b >= 0 &&
                              e.b < receivers,
                          "fault plan: module (" << e.a << "," << e.b
                                                 << ") out of range");
          break;
        case faults::FaultKind::kFiberCut:
          OSMOSIS_REQUIRE(e.a >= 0 && e.a < fibers_,
                          "fault plan: fiber " << e.a << " out of range");
          break;
        case faults::FaultKind::kBurstErrors:
          OSMOSIS_REQUIRE(e.a >= -1 && e.a < cfg_.ports,
                          "fault plan: burst-error link " << e.a
                                                          << " out of range");
          break;
        case faults::FaultKind::kGrantCorruption:
          break;
        case faults::FaultKind::kAdapterStall:
          OSMOSIS_REQUIRE(e.a >= 0 && e.a < cfg_.ports,
                          "fault plan: adapter " << e.a << " out of range");
          break;
        case faults::FaultKind::kPlaneFailure:
          OSMOSIS_REQUIRE(false,
                          "plane faults target the multi-plane / fabric "
                          "simulators, not the single-stage switch");
          break;
      }
    }
    injector_.emplace(cfg_.fault_plan);
  }

  // Arm the cell-cycle clock; seq 0 so the first cycle fires before any
  // same-timestamp message (matching the old PeriodicProcess behavior).
  Ev tick;
  tick.kind = EvKind::kCycle;
  push_event(tick);
}

void EventSwitchSim::push_event(Ev ev) {
  OSMOSIS_REQUIRE(ev.time_ns >= now_ns_, "cannot schedule into the past: "
                                             << ev.time_ns << " < "
                                             << now_ns_);
  ev.seq = next_seq_++;
  events_.push_back(std::move(ev));
  std::push_heap(events_.begin(), events_.end(), EvLater{});
}

void EventSwitchSim::fire_next() {
  std::pop_heap(events_.begin(), events_.end(), EvLater{});
  const Ev e = events_.back();
  events_.pop_back();
  now_ns_ = e.time_ns;
  switch (e.kind) {
    case EvKind::kCycle:
      if (!cycles_active_) break;  // canceled clock: pending tick no-ops
      on_cycle();
      {
        Ev tick;
        tick.time_ns = e.time_ns + cfg_.cell_ns;
        tick.kind = EvKind::kCycle;
        push_event(tick);
      }
      break;
    case EvKind::kRequest:
      sched_->request(e.a, e.b);
      request_times_[static_cast<std::size_t>(e.a) *
                         static_cast<std::size_t>(cfg_.ports) +
                     static_cast<std::size_t>(e.b)]
          .push_back(e.d);
      break;
    case EvKind::kGrant: {
      Grant g;
      g.input = e.a;
      g.output = e.b;
      g.receiver = e.c;
      on_grant_arrival(g, e.d);
      break;
    }
    case EvKind::kRetry:
      --retry_pending_;
      sched_->request(e.a, e.b);
      request_times_[static_cast<std::size_t>(e.a) *
                         static_cast<std::size_t>(cfg_.ports) +
                     static_cast<std::size_t>(e.b)]
          .push_back(now_ns_);
      break;
    case EvKind::kLanding:
      --in_flight_;
      egress_[static_cast<std::size_t>(e.cell.dst)].push_back(e.cell);
      break;
  }
}

void EventSwitchSim::block_input_ref(int in) {
  if (input_block_depth_[static_cast<std::size_t>(in)]++ == 0)
    sched_->block_input(in);
}

void EventSwitchSim::unblock_input_ref(int in) {
  auto& depth = input_block_depth_[static_cast<std::size_t>(in)];
  OSMOSIS_REQUIRE(depth > 0, "input mask underflow on input " << in);
  if (--depth == 0) sched_->unblock_input(in);
}

void EventSwitchSim::set_module_state(int out, int rx, bool failed,
                                      std::uint64_t cycle) {
  auto& flag =
      rx_failed_[static_cast<std::size_t>(out)][static_cast<std::size_t>(rx)];
  if (static_cast<bool>(flag) == failed) return;
  flag = failed ? 1 : 0;
  int alive = 0;
  for (const std::uint8_t dead : rx_failed_[static_cast<std::size_t>(out)])
    alive += dead ? 0 : 1;
  sched_->set_output_capacity(out, alive);
  health_.report(evs_component("module", out, rx),
                 failed ? mgmt::Status::kFailed : mgmt::Status::kOk, cycle,
                 failed ? "injected" : "repaired");
}

void EventSwitchSim::apply_fault_transitions(std::uint64_t cycle) {
  for (const faults::FaultTransition& tr : injector_->tick(cycle)) {
    const faults::FaultEvent& e = tr.event;
    if (tr.begin) {
      ++faults_injected_;
      recovery_.on_fault(cycle, evs_fault_key(e), backlog());
    } else {
      ++faults_repaired_;
      recovery_.on_repair(cycle, evs_fault_key(e));
    }
    switch (e.kind) {
      case faults::FaultKind::kModuleDeath:
        set_module_state(e.a, e.b, tr.begin, cycle);
        break;
      case faults::FaultKind::kFiberCut:
        for (int w = 0; w < wavelengths_; ++w) {
          const int in = e.a * wavelengths_ + w;
          if (tr.begin)
            block_input_ref(in);
          else
            unblock_input_ref(in);
        }
        health_.report(evs_component("broadcast", e.a),
                       tr.begin ? mgmt::Status::kFailed : mgmt::Status::kOk,
                       cycle, tr.begin ? "fiber cut" : "spliced");
        break;
      case faults::FaultKind::kAdapterStall:
        if (tr.begin)
          block_input_ref(e.a);
        else
          unblock_input_ref(e.a);
        health_.report(evs_component("adapter", e.a),
                       tr.begin ? mgmt::Status::kDegraded : mgmt::Status::kOk,
                       cycle, tr.begin ? "stalled" : "resumed");
        break;
      case faults::FaultKind::kBurstErrors:
        health_.report(e.a >= 0 ? evs_component("link", e.a)
                                : std::string("link/all"),
                       tr.begin ? mgmt::Status::kDegraded : mgmt::Status::kOk,
                       cycle, tr.begin ? "burst errors" : "clean");
        break;
      case faults::FaultKind::kGrantCorruption:
        health_.report("controlpath",
                       tr.begin ? mgmt::Status::kDegraded : mgmt::Status::kOk,
                       cycle, tr.begin ? "grant corruption" : "clean");
        break;
      case faults::FaultKind::kPlaneFailure:
        break;  // rejected at construction
    }
  }
}

std::uint64_t EventSwitchSim::backlog() const {
  std::uint64_t total = in_flight_ + retry_pending_;
  for (const auto& v : voqs_)
    total += static_cast<std::uint64_t>(v.total_occupancy());
  for (const auto& q : egress_) total += q.size();
  return total;
}

double EventSwitchSim::ctrl_ns(int adapter) const {
  if (adapter < static_cast<int>(cfg_.ctrl_fiber_ns.size()))
    return cfg_.ctrl_fiber_ns[static_cast<std::size_t>(adapter)];
  return cfg_.default_ctrl_ns;
}

void EventSwitchSim::on_grant_arrival(Grant g, double requested_at) {
  const double now = now_ns_;

  // Control-path grant corruption / data-path FEC-uncorrectable loss:
  // the cell stays at the head of its VOQ (per-flow FIFO keeps order)
  // and the adapter re-files the request after the timeout.
  const bool lost_grant = injector_ && injector_->corrupt_grant();
  const bool lost_transfer =
      !lost_grant && injector_ && injector_->corrupt_transfer(g.input);
  // A fault can land while this grant was in the scheduler pipeline or
  // on the control fiber: the ingress went dark / stalled, or the
  // egress lost the granted switching module. The transfer is lost in
  // flight and heals through the same ARQ re-request.
  bool stale_path = false;
  if (injector_) {
    int alive = 0;
    for (const auto failed : rx_failed_[static_cast<std::size_t>(g.output)])
      alive += failed == 0;
    stale_path =
        input_block_depth_[static_cast<std::size_t>(g.input)] > 0 ||
        g.receiver >= alive;
  }
  if (lost_grant || lost_transfer || stale_path) {
    const int timeout_cycles =
        lost_grant ? cfg_.grant_timeout_cycles : cfg_.arq_timeout_cycles;
    if (lost_grant)
      ++grant_corruptions_;
    else
      ++retransmissions_;
    ++retry_pending_;
    Ev retry;
    retry.time_ns = now + static_cast<double>(timeout_cycles) * cfg_.cell_ns;
    retry.kind = EvKind::kRetry;
    retry.a = g.input;
    retry.b = g.output;
    push_event(retry);
    return;
  }
  grant_ns_.add(now - requested_at);

  Cell cell = voqs_[static_cast<std::size_t>(g.input)].pop(g.output);
  OSMOSIS_REQUIRE(cell.dst == g.output, "VOQ returned a mis-routed cell");
  telem_.mark(cell.trace, telemetry::Stage::kGrant, now);

  // The cell launches with the next cell-cycle boundary after the grant
  // arrives, rides the data fiber alongside the control run, and crosses
  // the crossbar in one cycle.
  const double data_flight = ctrl_ns(g.input);
  const double ready = now + data_flight;
  const std::uint64_t slot =
      static_cast<std::uint64_t>(std::ceil(ready / cfg_.cell_ns - 1e-9));
  const double arrive = (static_cast<double>(slot) + 1.0) * cfg_.cell_ns;

  // Receiver accounting on the crossbar slot grid.
  int& booked = slot_bookings_[{g.output, slot}];
  if (++booked > cfg_.sched.receivers) ++receiver_conflicts_;
  telem_.mark(cell.trace, telemetry::Stage::kTransmit, arrive);

  ++in_flight_;
  Ev landing;
  landing.time_ns = arrive;
  landing.kind = EvKind::kLanding;
  landing.cell = cell;
  push_event(landing);
}

void EventSwitchSim::on_cycle() {
  const double now = now_ns_;

  // 0. Scheduled faults begin / get repaired at the cycle boundary.
  if (injector_) {
    OSMOSIS_PROF_SCOPE("event.faults");
    apply_fault_transitions(cycle_);
  }

  // 1. Arrivals this cycle; requests fly to the scheduler.
  {
  OSMOSIS_PROF_SCOPE("event.ingest");
  for (int in = 0; in < cfg_.ports && !draining_; ++in) {
    sim::Arrival a;
    if (!traffic_->sample(in, a)) continue;
    const std::size_t flow =
        (static_cast<std::size_t>(in) * static_cast<std::size_t>(cfg_.ports) +
         static_cast<std::size_t>(a.dst)) *
            2 +
        (a.cls == sim::TrafficClass::kControl ? 0 : 1);
    Cell cell;
    cell.src = in;
    cell.dst = a.dst;
    cell.seq = flow_seq_[flow]++;
    cell.arrival_slot = cycle_;
    cell.cls = a.cls;
    cell.trace = telem_.begin_cell(in, a.dst, now);
    telem_.mark(cell.trace, telemetry::Stage::kRequest, now + ctrl_ns(in));
    ++offered_;
    monitor_.offered(static_cast<std::uint64_t>(flow));
    voqs_[static_cast<std::size_t>(in)].push(cell);
    Ev req;
    req.time_ns = now + ctrl_ns(in);
    req.kind = EvKind::kRequest;
    req.a = in;
    req.b = a.dst;
    req.d = now;  // the grant latency clock starts at request issue
    push_event(req);
  }
  }

  // 2. The central scheduler arbitrates once per cycle; grants fly back.
  {
  OSMOSIS_PROF_SCOPE("event.sched");
  for (const Grant& g : sched_->tick()) {
    auto& times = request_times_[static_cast<std::size_t>(g.input) *
                                     static_cast<std::size_t>(cfg_.ports) +
                                 static_cast<std::size_t>(g.output)];
    OSMOSIS_REQUIRE(!times.empty(), "grant without outstanding request");
    const double requested_at = times.front();
    times.pop_front();
    Ev gr;
    gr.time_ns = now + ctrl_ns(g.input);
    gr.kind = EvKind::kGrant;
    gr.a = g.input;
    gr.b = g.output;
    gr.c = g.receiver;
    gr.d = requested_at;
    push_event(gr);
  }
  }

  // 3. Egress lines drain one cell per cycle.
  const bool measuring = now >= cfg_.warmup_ns;
  {
  OSMOSIS_PROF_SCOPE("event.egress");
  for (int out = 0; out < cfg_.ports; ++out) {
    auto& q = egress_[static_cast<std::size_t>(out)];
    if (q.empty()) continue;
    const Cell cell = q.front();
    q.pop_front();
    const int cls_bit = cell.cls == sim::TrafficClass::kControl ? 0 : 1;
    reorder_.deliver(cell.src, cell.dst * 2 + cls_bit, cell.seq);
    monitor_.delivered(
        (static_cast<std::uint64_t>(cell.src) *
             static_cast<std::uint64_t>(cfg_.ports) +
         static_cast<std::uint64_t>(cell.dst)) *
                2 +
            static_cast<std::uint64_t>(cls_bit),
        cell.seq);
    telem_.finish_cell(cell.trace, now + cfg_.cell_ns, measuring);
    ++total_delivered_;
    if (measuring) {
      const double delay =
          now + cfg_.cell_ns -
          static_cast<double>(cell.arrival_slot) * cfg_.cell_ns;
      delay_ns_.add(delay);
      meter_.add_delivery();
      ++delivered_per_port_[static_cast<std::size_t>(out)];
    }
  }
  }
  if (measuring) meter_.advance_slots(1, static_cast<std::uint64_t>(cfg_.ports));

  // Recovery bookkeeping: a repaired fault counts as recovered once the
  // backlog returns to its pre-fault baseline.
  if (injector_) {
    OSMOSIS_PROF_SCOPE("event.recovery");
    recovery_.observe(cycle_, backlog());
  }

  // Invariant verification at the cycle boundary. retry_pending_
  // double-counts VOQ-resident cells (a failed transfer leaves its cell
  // in the VOQ), so the conservation ledger excludes it; it still feeds
  // the liveness watchdog as pending work.
  monitor_.end_slot({cycle_, backlog() - retry_pending_,
                     injector_ ? injector_->active_faults() : 0,
                     retry_pending_});

  sample_series(cycle_);

  // Trim stale slot bookings to keep the map bounded.
  if (cycle_ % 4096 == 0 && cycle_ > 0) {
    const std::uint64_t horizon = cycle_ - 2048;
    for (auto it = slot_bookings_.begin(); it != slot_bookings_.end();) {
      it = it->first.second < horizon ? slot_bookings_.erase(it)
                                      : std::next(it);
    }
  }
  ++cycle_;
}

bool EventSwitchSim::advance() {
  ++advance_count_;
  const double main_limit = cfg_.warmup_ns + cfg_.measure_ns;
  switch (phase_) {
    case Phase::kMain:
      if (!events_.empty() && events_.front().time_ns <= main_limit) {
        fire_next();
        return true;
      }
      if (now_ns_ < main_limit) now_ns_ = main_limit;
      drain_horizon_ = main_limit;
      draining_ = true;
      phase_ = Phase::kDrain;
      return true;
    case Phase::kDrain:
      // Post-run drain: arrivals off, keep cycling until the recovered
      // switch has emptied every queue (exactly-once verification
      // needs it). One drain cycle per advance().
      if (cfg_.drain_max_cycles > 0 &&
          drained_cycles_ < cfg_.drain_max_cycles &&
          (backlog() > 0 || (injector_ && injector_->pending() > 0))) {
        drain_horizon_ += cfg_.cell_ns;
        while (!events_.empty() &&
               events_.front().time_ns <= drain_horizon_)
          fire_next();
        if (now_ns_ < drain_horizon_) now_ns_ = drain_horizon_;
        ++drained_cycles_;
        return true;
      }
      cycles_active_ = false;  // cancel the clock; flush everything else
      phase_ = Phase::kFlush;
      return true;
    case Phase::kFlush:
      if (!events_.empty()) {
        fire_next();
        return true;
      }
      phase_ = Phase::kDone;
      return false;
    case Phase::kDone:
      return false;
  }
  return false;
}

void EventSwitchSim::sample_series(std::uint64_t cycle) {
  prof::TimeSeriesSampler& s = telem_.series();
  if (!s.due(cycle)) return;
  OSMOSIS_PROF_SCOPE("event.telemetry");
  std::uint64_t voq_total = 0;
  std::uint64_t voq_max = 0;
  for (const auto& v : voqs_) {
    const auto occ = static_cast<std::uint64_t>(v.total_occupancy());
    voq_total += occ;
    voq_max = std::max(voq_max, occ);
  }
  std::uint64_t egress_total = 0;
  for (const auto& q : egress_) egress_total += q.size();
  const std::uint64_t dcycles = cycle - last_sample_cycle_;
  const double ddeliv =
      static_cast<double>(total_delivered_ - last_sample_delivered_);
  const double thr =
      dcycles ? ddeliv / (static_cast<double>(dcycles) *
                          static_cast<double>(cfg_.ports))
              : 0.0;
  s.record(cycle,
           {static_cast<double>(backlog()), static_cast<double>(voq_total),
            static_cast<double>(voq_max), static_cast<double>(egress_total),
            static_cast<double>(in_flight_),
            static_cast<double>(retry_pending_), thr});
  last_sample_cycle_ = cycle;
  last_sample_delivered_ = total_delivered_;
}

EventSwitchResult EventSwitchSim::run() {
  while (advance()) {
  }
  return finalize();
}

EventSwitchResult EventSwitchSim::finalize() {
  EventSwitchResult r;
  r.offered_load = traffic_->offered_load();
  r.throughput = meter_.utilization();
  r.delivered = delay_ns_.count();
  r.mean_delay_ns = delay_ns_.mean();
  r.p99_delay_ns = delay_ns_.p99();
  r.mean_delay_cycles = delay_ns_.mean() / cfg_.cell_ns;
  r.mean_grant_latency_ns = grant_ns_.mean();
  r.receiver_conflicts = receiver_conflicts_;
  r.out_of_order = reorder_.out_of_order();
  r.offered = offered_;
  r.grant_corruptions = grant_corruptions_;
  r.retransmissions = retransmissions_;
  r.faults_injected = faults_injected_;
  r.faults_repaired = faults_repaired_;
  r.faults_recovered = recovery_.recovered();
  r.mean_recovery_cycles = recovery_.mean_recovery_slots();
  r.max_recovery_cycles = recovery_.max_recovery_slots();
  r.drained_cycles = drained_cycles_;
  monitor_.finish(cycle_, backlog() - retry_pending_);
  const auto inv = monitor_.exactly_once().report();
  r.exactly_once_in_order = inv.exactly_once_in_order();
  r.duplicates = inv.duplicates;
  r.missing = inv.missing;
  r.invariant_violations = monitor_.violations();
  r.first_violation = monitor_.first_violation();

  if (telem_.enabled()) {
    auto& ctr = telem_.counters();
    for (int p = 0; p < cfg_.ports; ++p)
      ctr.add("egress." + std::to_string(p) + ".delivered",
              static_cast<double>(
                  delivered_per_port_[static_cast<std::size_t>(p)]));
    ctr.add("switch.delivered", static_cast<double>(r.delivered));
    ctr.add("switch.out_of_order", static_cast<double>(r.out_of_order));
    ctr.add("sched.receiver_conflicts",
            static_cast<double>(receiver_conflicts_));
  }
  return r;
}

template <class Ar>
void EventSwitchSim::io_core(Ar& a) {
  ckpt::field(a, now_ns_);
  ckpt::field(a, next_seq_);
  ckpt::field(a, events_);
  ckpt::field(a, phase_);
  ckpt::field(a, drain_horizon_);
  ckpt::field(a, cycles_active_);
  ckpt::field(a, advance_count_);
  ckpt::field(a, cycle_);
  ckpt::field(a, draining_);
  ckpt::field(a, drained_cycles_);
  ckpt::field(a, in_flight_);
  ckpt::field(a, retry_pending_);
  ckpt::field(a, flow_seq_);
  ckpt::field(a, request_times_);
  ckpt::field(a, egress_);
  ckpt::field(a, slot_bookings_);
  ckpt::field(a, rx_failed_);
  ckpt::field(a, input_block_depth_);
  ckpt::field(a, receiver_conflicts_);
  ckpt::field(a, offered_);
  ckpt::field(a, grant_corruptions_);
  ckpt::field(a, retransmissions_);
  ckpt::field(a, faults_injected_);
  ckpt::field(a, faults_repaired_);
  ckpt::field(a, delivered_per_port_);
  ckpt::field(a, total_delivered_);
  ckpt::field(a, last_sample_cycle_);
  ckpt::field(a, last_sample_delivered_);
  if constexpr (Ar::kLoading) {
    if (egress_.size() != static_cast<std::size_t>(cfg_.ports) ||
        request_times_.size() != static_cast<std::size_t>(cfg_.ports) *
                                     static_cast<std::size_t>(cfg_.ports))
      throw ckpt::Error("event-switch state sized for a different port "
                        "count");
  }
}

template <class Ar>
void EventSwitchSim::io_stats(Ar& a) {
  ckpt::field(a, delay_ns_);
  ckpt::field(a, grant_ns_);
  ckpt::field(a, meter_);
  ckpt::field(a, reorder_);
  ckpt::field(a, monitor_);
  ckpt::field(a, recovery_);
  ckpt::field(a, health_);
}

void EventSwitchSim::save_state(ckpt::Writer& w) const {
  auto* self = const_cast<EventSwitchSim*>(this);
  ckpt::write_chunk(w, "event.core",
                    [&](ckpt::Sink& s) { self->io_core(s); });
  ckpt::write_chunk(w, "event.traffic",
                    [&](ckpt::Sink& s) { traffic_->save_state(s); });
  ckpt::write_chunk(w, "event.sched",
                    [&](ckpt::Sink& s) { sched_->save_state(s); });
  ckpt::write_chunk(w, "event.voq", [&](ckpt::Sink& s) {
    std::uint64_t n = voqs_.size();
    ckpt::field(s, n);
    for (auto& v : self->voqs_) ckpt::field(s, v);
  });
  ckpt::write_chunk(w, "event.stats",
                    [&](ckpt::Sink& s) { self->io_stats(s); });
  if (injector_)
    ckpt::write_chunk(w, "event.faults", [&](ckpt::Sink& s) {
      ckpt::field(s, *self->injector_);
    });
  ckpt::write_chunk(w, "event.telemetry",
                    [&](ckpt::Sink& s) { ckpt::field(s, self->telem_); });
}

void EventSwitchSim::load_state(const ckpt::Reader& r) {
  ckpt::read_chunk(r, "event.core", [&](ckpt::Source& s) { io_core(s); });
  ckpt::read_chunk(r, "event.traffic",
                   [&](ckpt::Source& s) { traffic_->load_state(s); });
  ckpt::read_chunk(r, "event.sched",
                   [&](ckpt::Source& s) { sched_->load_state(s); });
  ckpt::read_chunk(r, "event.voq", [&](ckpt::Source& s) {
    std::uint64_t n = 0;
    ckpt::field(s, n);
    if (n != voqs_.size())
      throw ckpt::Error("VOQ bank count mismatch in checkpoint");
    for (auto& v : voqs_) ckpt::field(s, v);
  });
  ckpt::read_chunk(r, "event.stats", [&](ckpt::Source& s) { io_stats(s); });
  if (injector_)
    ckpt::read_chunk(r, "event.faults",
                     [&](ckpt::Source& s) { ckpt::field(s, *injector_); });
  ckpt::read_chunk(r, "event.telemetry",
                   [&](ckpt::Source& s) { ckpt::field(s, telem_); });
}

telemetry::RunReport EventSwitchSim::report() const {
  telemetry::RunReport r = telem_.make_report("EventSwitchSim", "ns");
  r.config["ports"] = cfg_.ports;
  r.config["receivers"] = cfg_.sched.receivers;
  r.config["cell_ns"] = cfg_.cell_ns;
  r.config["default_ctrl_ns"] = cfg_.default_ctrl_ns;
  r.config["warmup_ns"] = cfg_.warmup_ns;
  r.config["measure_ns"] = cfg_.measure_ns;
  r.config["offered_load"] = traffic_->offered_load();
  r.config["telemetry.sample_every"] = cfg_.telemetry.sample_every;
  if (!cfg_.fault_plan.empty())
    r.config["fault_events"] = static_cast<double>(cfg_.fault_plan.size());
  r.info["scheduler"] = sched_->name();
  r.health = health_.event_log();
  r.histograms.emplace("delay",
                       telemetry::HistogramSummary::of(delay_ns_));
  r.histograms.emplace("grant_latency",
                       telemetry::HistogramSummary::of(grant_ns_));
  monitor_.to_report(r);
  return r;
}

EventSwitchResult run_event_uniform(const EventSwitchConfig& cfg, double load,
                                    std::uint64_t seed) {
  EventSwitchSim sim(cfg, sim::make_uniform(cfg.ports, load, seed));
  return sim.run();
}

}  // namespace osmosis::sw
