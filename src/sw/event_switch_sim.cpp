#include "src/sw/event_switch_sim.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/util/log.hpp"

namespace osmosis::sw {

namespace {

// The facade's histogram defaults suit cycle-unit values; this sim
// records nanoseconds, so widen an untouched default to the shape the
// sim's own delay histogram uses.
telemetry::TelemetryConfig ns_scaled(telemetry::TelemetryConfig t) {
  if (t.hist_linear_limit == telemetry::TelemetryConfig{}.hist_linear_limit) {
    t.hist_linear_limit = 8192.0;
    t.hist_growth = 1.1;
  }
  return t;
}

}  // namespace

EventSwitchSim::EventSwitchSim(EventSwitchConfig cfg,
                               std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg),
      traffic_(std::move(traffic)),
      telem_(ns_scaled(cfg.telemetry)) {
  OSMOSIS_REQUIRE(cfg_.cell_ns > 0.0, "cell cycle must be positive");
  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == cfg_.ports,
                  "traffic generator port mismatch");
  cfg_.sched.ports = cfg_.ports;
  sched_ = make_scheduler(cfg_.sched);
  voqs_.reserve(static_cast<std::size_t>(cfg_.ports));
  for (int in = 0; in < cfg_.ports; ++in) voqs_.emplace_back(in, cfg_.ports);
  egress_.resize(static_cast<std::size_t>(cfg_.ports));
  request_times_.resize(static_cast<std::size_t>(cfg_.ports) *
                        static_cast<std::size_t>(cfg_.ports));
  flow_seq_.assign(static_cast<std::size_t>(cfg_.ports) *
                       static_cast<std::size_t>(cfg_.ports) * 2,
                   0);
  delivered_per_port_.assign(static_cast<std::size_t>(cfg_.ports), 0);
}

double EventSwitchSim::ctrl_ns(int adapter) const {
  if (adapter < static_cast<int>(cfg_.ctrl_fiber_ns.size()))
    return cfg_.ctrl_fiber_ns[static_cast<std::size_t>(adapter)];
  return cfg_.default_ctrl_ns;
}

void EventSwitchSim::on_grant_arrival(Grant g, double requested_at) {
  const double now = queue_.now();
  grant_ns_.add(now - requested_at);

  Cell cell = voqs_[static_cast<std::size_t>(g.input)].pop(g.output);
  OSMOSIS_REQUIRE(cell.dst == g.output, "VOQ returned a mis-routed cell");
  telem_.mark(cell.trace, telemetry::Stage::kGrant, now);

  // The cell launches with the next cell-cycle boundary after the grant
  // arrives, rides the data fiber alongside the control run, and crosses
  // the crossbar in one cycle.
  const double data_flight = ctrl_ns(g.input);
  const double ready = now + data_flight;
  const std::uint64_t slot =
      static_cast<std::uint64_t>(std::ceil(ready / cfg_.cell_ns - 1e-9));
  const double arrive = (static_cast<double>(slot) + 1.0) * cfg_.cell_ns;

  // Receiver accounting on the crossbar slot grid.
  int& booked = slot_bookings_[{g.output, slot}];
  if (++booked > cfg_.sched.receivers) ++receiver_conflicts_;
  telem_.mark(cell.trace, telemetry::Stage::kTransmit, arrive);

  queue_.schedule_at(arrive, [this, cell] {
    egress_[static_cast<std::size_t>(cell.dst)].push_back(cell);
  });
}

void EventSwitchSim::on_cycle() {
  const double now = queue_.now();

  // 1. Arrivals this cycle; requests fly to the scheduler.
  for (int in = 0; in < cfg_.ports; ++in) {
    sim::Arrival a;
    if (!traffic_->sample(in, a)) continue;
    const std::size_t flow =
        (static_cast<std::size_t>(in) * static_cast<std::size_t>(cfg_.ports) +
         static_cast<std::size_t>(a.dst)) *
            2 +
        (a.cls == sim::TrafficClass::kControl ? 0 : 1);
    Cell cell;
    cell.src = in;
    cell.dst = a.dst;
    cell.seq = flow_seq_[flow]++;
    cell.arrival_slot = cycle_;
    cell.cls = a.cls;
    cell.trace = telem_.begin_cell(in, a.dst, now);
    telem_.mark(cell.trace, telemetry::Stage::kRequest, now + ctrl_ns(in));
    voqs_[static_cast<std::size_t>(in)].push(cell);
    const int dst = a.dst;
    queue_.schedule_in(ctrl_ns(in), [this, in, dst, now] {
      sched_->request(in, dst);
      request_times_[static_cast<std::size_t>(in) *
                         static_cast<std::size_t>(cfg_.ports) +
                     static_cast<std::size_t>(dst)]
          .push_back(now);
    });
  }

  // 2. The central scheduler arbitrates once per cycle; grants fly back.
  for (const Grant& g : sched_->tick()) {
    auto& times = request_times_[static_cast<std::size_t>(g.input) *
                                     static_cast<std::size_t>(cfg_.ports) +
                                 static_cast<std::size_t>(g.output)];
    OSMOSIS_REQUIRE(!times.empty(), "grant without outstanding request");
    const double requested_at = times.front();
    times.pop_front();
    queue_.schedule_in(ctrl_ns(g.input), [this, g, requested_at] {
      on_grant_arrival(g, requested_at);
    });
  }

  // 3. Egress lines drain one cell per cycle.
  const bool measuring = now >= cfg_.warmup_ns;
  for (int out = 0; out < cfg_.ports; ++out) {
    auto& q = egress_[static_cast<std::size_t>(out)];
    if (q.empty()) continue;
    const Cell cell = q.front();
    q.pop_front();
    reorder_.deliver(
        cell.src,
        cell.dst * 2 + (cell.cls == sim::TrafficClass::kControl ? 0 : 1),
        cell.seq);
    telem_.finish_cell(cell.trace, now + cfg_.cell_ns, measuring);
    if (measuring) {
      const double delay =
          now + cfg_.cell_ns -
          static_cast<double>(cell.arrival_slot) * cfg_.cell_ns;
      delay_ns_.add(delay);
      meter_.add_delivery();
      ++delivered_per_port_[static_cast<std::size_t>(out)];
    }
  }
  if (measuring) meter_.advance_slots(1, static_cast<std::uint64_t>(cfg_.ports));

  // Trim stale slot bookings to keep the map bounded.
  if (cycle_ % 4096 == 0 && cycle_ > 0) {
    const std::uint64_t horizon = cycle_ - 2048;
    for (auto it = slot_bookings_.begin(); it != slot_bookings_.end();) {
      it = it->first.second < horizon ? slot_bookings_.erase(it)
                                      : std::next(it);
    }
  }
  ++cycle_;
}

EventSwitchResult EventSwitchSim::run() {
  sim::PeriodicProcess cycles(queue_, 0.0, cfg_.cell_ns,
                              [this] { on_cycle(); });
  queue_.run_until(cfg_.warmup_ns + cfg_.measure_ns);
  cycles.cancel();
  queue_.run();  // flush in-flight messages

  EventSwitchResult r;
  r.offered_load = traffic_->offered_load();
  r.throughput = meter_.utilization();
  r.delivered = delay_ns_.count();
  r.mean_delay_ns = delay_ns_.mean();
  r.p99_delay_ns = delay_ns_.p99();
  r.mean_delay_cycles = delay_ns_.mean() / cfg_.cell_ns;
  r.mean_grant_latency_ns = grant_ns_.mean();
  r.receiver_conflicts = receiver_conflicts_;
  r.out_of_order = reorder_.out_of_order();

  if (telem_.enabled()) {
    auto& ctr = telem_.counters();
    for (int p = 0; p < cfg_.ports; ++p)
      ctr.add("egress." + std::to_string(p) + ".delivered",
              static_cast<double>(
                  delivered_per_port_[static_cast<std::size_t>(p)]));
    ctr.add("switch.delivered", static_cast<double>(r.delivered));
    ctr.add("switch.out_of_order", static_cast<double>(r.out_of_order));
    ctr.add("sched.receiver_conflicts",
            static_cast<double>(receiver_conflicts_));
  }
  return r;
}

telemetry::RunReport EventSwitchSim::report() const {
  telemetry::RunReport r = telem_.make_report("EventSwitchSim", "ns");
  r.config["ports"] = cfg_.ports;
  r.config["receivers"] = cfg_.sched.receivers;
  r.config["cell_ns"] = cfg_.cell_ns;
  r.config["default_ctrl_ns"] = cfg_.default_ctrl_ns;
  r.config["warmup_ns"] = cfg_.warmup_ns;
  r.config["measure_ns"] = cfg_.measure_ns;
  r.config["offered_load"] = traffic_->offered_load();
  r.config["telemetry.sample_every"] = cfg_.telemetry.sample_every;
  r.info["scheduler"] = sched_->name();
  r.histograms.emplace("delay",
                       telemetry::HistogramSummary::of(delay_ns_));
  r.histograms.emplace("grant_latency",
                       telemetry::HistogramSummary::of(grant_ns_));
  return r;
}

EventSwitchResult run_event_uniform(const EventSwitchConfig& cfg, double load,
                                    std::uint64_t seed) {
  EventSwitchSim sim(cfg, sim::make_uniform(cfg.ports, load, seed));
  return sim.run();
}

}  // namespace osmosis::sw
