#include "src/sw/pim.hpp"

#include <sstream>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::sw {

PimScheduler::PimScheduler(int ports, int receivers, int iterations,
                           sim::Rng rng)
    : Scheduler(ports, receivers),
      iterations_(iterations > 0
                      ? iterations
                      : util::ceil_log2(static_cast<std::uint64_t>(ports))),
      rng_(rng),
      grants_to_input_(static_cast<std::size_t>(ports)) {
  if (iterations_ < 1) iterations_ = 1;
}

std::string PimScheduler::name() const {
  std::ostringstream oss;
  oss << "PIM(" << iterations_ << ")";
  return oss.str();
}

void PimScheduler::run_iteration(IslipIteration::Matching& m) {
  const int n = ports();
  granted_inputs_.clear();

  // Grant phase: each output with capacity picks random requesting,
  // still-free inputs.
  for (int out = 0; out < n; ++out) {
    int cap = m.capacity[static_cast<std::size_t>(out)];
    if (cap <= 0) continue;
    PortSet cands = demand_.candidates(out);
    cands &= m.input_free;
    // Collect candidate indices (PIM is a reference implementation; the
    // O(N) scan is acceptable here).
    std::vector<int> list;
    for (int in = 0; in < n; ++in)
      if (cands.test(in)) list.push_back(in);
    rng_.shuffle(list);
    const int take = std::min<int>(cap, static_cast<int>(list.size()));
    for (int k = 0; k < take; ++k) {
      const int in = list[static_cast<std::size_t>(k)];
      auto& offers = grants_to_input_[static_cast<std::size_t>(in)];
      if (offers.empty()) granted_inputs_.push_back(in);
      offers.push_back(out);
    }
  }

  // Accept phase: each granted input accepts one random offer.
  for (const int in : granted_inputs_) {
    auto& offers = grants_to_input_[static_cast<std::size_t>(in)];
    const auto pick =
        rng_.uniform_int(static_cast<std::uint64_t>(offers.size()));
    const int out = offers[static_cast<std::size_t>(pick)];
    offers.clear();
    m.input_free.clear(in);
    --m.capacity[static_cast<std::size_t>(out)];
    demand_.reserve(in, out);
    m.matches.push_back(Grant{in, out, 0});
  }
  ++m.iterations_run;
}

std::vector<Grant> PimScheduler::tick() {
  matching_.reset(ports(), output_capacity_);
  for (int it = 0; it < iterations_; ++it) run_iteration(matching_);
  std::vector<Grant> grants = std::move(matching_.matches);
  matching_.matches.clear();
  number_receivers(grants);
  return grants;
}

}  // namespace osmosis::sw
