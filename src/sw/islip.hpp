#pragma once
// Iterative iSLIP scheduler [17]-style: k grant/accept iterations
// executed within a single cell cycle. This is the *idealized* central
// scheduler — it assumes hardware fast enough to run log2(N) iterations
// inside one 51.2 ns cycle, which the paper argues is not feasible at 64
// ports / 40 Gb/s. It serves as the throughput reference against which
// the pipelined variants are judged.

#include "src/sw/scheduler.hpp"

namespace osmosis::sw {

class IslipScheduler final : public Scheduler {
 public:
  /// `iterations` = 0 picks ceil(log2(ports)), the classic rule.
  IslipScheduler(int ports, int receivers, int iterations);

  std::string name() const override;

  std::vector<Grant> tick() override;

  int iterations() const { return iterations_; }

  void save_state(ckpt::Sink& s) const override {
    Scheduler::save_state(s);
    ckpt::field(s, const_cast<IslipIteration&>(engine_));
  }
  void load_state(ckpt::Source& s) override {
    Scheduler::load_state(s);
    ckpt::field(s, engine_);
  }

 private:
  int iterations_;
  IslipIteration engine_;
  IslipIteration::Matching matching_;
};

}  // namespace osmosis::sw
