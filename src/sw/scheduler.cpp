#include "src/sw/scheduler.hpp"

#include "src/sw/flppr.hpp"
#include "src/sw/islip.hpp"
#include "src/sw/pim.hpp"
#include "src/sw/pipelined_islip.hpp"
#include "src/sw/tdm.hpp"
#include "src/sw/wfa.hpp"
#include "src/util/log.hpp"

namespace osmosis::sw {

std::unique_ptr<Scheduler> make_scheduler(const SchedulerConfig& cfg) {
  OSMOSIS_REQUIRE(cfg.ports >= 1, "need at least one port");
  switch (cfg.kind) {
    case SchedulerKind::kIslip:
      return std::make_unique<IslipScheduler>(cfg.ports, cfg.receivers,
                                              cfg.iterations);
    case SchedulerKind::kPim:
      return std::make_unique<PimScheduler>(cfg.ports, cfg.receivers,
                                            cfg.iterations,
                                            sim::Rng(cfg.seed));
    case SchedulerKind::kPipelinedIslip:
      return std::make_unique<PipelinedIslipScheduler>(
          cfg.ports, cfg.receivers, cfg.iterations);
    case SchedulerKind::kFlppr:
      return std::make_unique<FlpprScheduler>(cfg.ports, cfg.receivers,
                                              cfg.iterations,
                                              cfg.flppr_policy);
    case SchedulerKind::kTdm:
      return std::make_unique<TdmScheduler>(cfg.ports, cfg.receivers);
    case SchedulerKind::kWfa:
      return std::make_unique<WfaScheduler>(cfg.ports, cfg.receivers);
  }
  OSMOSIS_REQUIRE(false, "unknown scheduler kind");
  __builtin_unreachable();
}

}  // namespace osmosis::sw
