#include "src/sw/pipelined_islip.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::sw {

PipelinedIslipScheduler::PipelinedIslipScheduler(int ports, int receivers,
                                                 int depth)
    : Scheduler(ports, receivers),
      depth_(depth > 0 ? depth
                       : util::ceil_log2(static_cast<std::uint64_t>(ports))) {
  if (depth_ < 1) depth_ = 1;
  subs_.reserve(static_cast<std::size_t>(depth_));
  for (int s = 0; s < depth_; ++s) {
    subs_.emplace_back(ports, s);
    subs_.back().matching.reset(ports, receivers);
  }
}

void PipelinedIslipScheduler::on_output_capacity_changed(int out,
                                                         int capacity) {
  for (auto& sub : subs_) {
    int matched = 0;
    for (const auto& m : sub.matching.matches) matched += m.output == out;
    auto& cap = sub.matching.capacity[static_cast<std::size_t>(out)];
    cap = std::min(cap, std::max(0, capacity - matched));
  }
}

std::string PipelinedIslipScheduler::name() const {
  std::ostringstream oss;
  oss << "pipelined-iSLIP(depth=" << depth_ << ")";
  return oss.str();
}

std::vector<Grant> PipelinedIslipScheduler::tick() {
  std::vector<Grant> grants;
  const int start_phase = static_cast<int>(t_ % static_cast<std::uint64_t>(depth_));

  for (auto& sub : subs_) {
    // A sub-scheduler re-snapshots the (residual) requests on its start
    // cycle; requests arriving later are invisible to it — this is the
    // pipeline-latency penalty of the prior art.
    if (sub.phase == start_phase) {
      sub.snapshot = demand_;
      sub.matching.reset(ports(), output_capacity_);
    }
    // One iteration per cycle. Matches consume residual demand from BOTH
    // the private snapshot and the live shared state, so concurrent
    // sub-schedulers never promise the same cell twice.
    sub.engine.run(sub.snapshot, &demand_, sub.matching,
                   /*update_pointers=*/sub.matching.iterations_run == 0);
    // After its depth-th iteration the matching is complete: issue.
    if (sub.matching.iterations_run == depth_) {
      grants.insert(grants.end(), sub.matching.matches.begin(),
                    sub.matching.matches.end());
      sub.matching.matches.clear();
    }
  }
  ++t_;
  number_receivers(grants);
  return grants;
}

}  // namespace osmosis::sw
