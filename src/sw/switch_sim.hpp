#pragma once
// Slot-accurate simulator of one OSMOSIS single-stage switch (§V): VOQ
// ingress adapters, a central scheduler (FLPPR / pipelined iSLIP / ...),
// the bufferless crossbar, and egress adapters with one or two receivers
// feeding an egress queue that drains at line rate. Time advances in
// cell cycles (51.2 ns each for the demonstrator format).
//
// This is the tool behind Fig. 6 (request-to-grant latency) and Fig. 7
// (delay vs throughput, single vs dual receiver), and the measured half
// of the Table 1 compliance bench.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/chaos/monitor.hpp"
#include "src/ckpt/ckpt.hpp"
#include "src/faults/fault_injector.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/faults/invariant.hpp"
#include "src/mgmt/health.hpp"
#include "src/phy/crossbar_optical.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/scheduler.hpp"
#include "src/sw/voq.hpp"
#include "src/telemetry/telemetry.hpp"

namespace osmosis::sw {

struct SwitchSimConfig {
  int ports = 64;
  SchedulerConfig sched;          // sched.ports is overridden by `ports`
  int egress_line_rate = 1;       // cells/slot the egress line drains
  int request_delay_slots = 0;    // ingress -> scheduler control latency
  std::uint64_t warmup_slots = 2'000;
  std::uint64_t measure_slots = 50'000;
  bool measure_grant_latency = true;
  // When set, every grant also reconfigures a gate-accurate
  // phy::BroadcastSelectCrossbar and the simulator asserts the selected
  // light path matches the granted input (slower; used by tests).
  bool validate_optical_path = false;
  // Called for every cell leaving an egress line (warmup included), with
  // the departure slot. Used by the host reassembly layer.
  std::function<void(const Cell&, std::uint64_t slot)> on_delivery;
  // Failure injection, applied before the run. A failed optical
  // switching module (egress, receiver) reduces that output's usable
  // receiver count (the dual-receiver redundancy keeps it reachable); a
  // failed broadcast fiber takes all its WDM ingress ports dark (those
  // hosts are offline: they stop generating and the scheduler masks
  // them).
  std::vector<std::pair<int, int>> failed_receivers;
  std::vector<int> failed_fibers;
  // Mid-run fault schedule (src/faults/): module death/revival, fiber
  // cuts, burst errors, grant corruption, adapter stalls. Empty (the
  // default) leaves the fault-free path untouched — results are
  // bit-identical to a build without the fault layer.
  faults::FaultPlan fault_plan;
  // Missed-grant detection: a grant corrupted on the control path is
  // noticed by the ingress adapter this many cycles later and the
  // request is re-filed with the scheduler.
  int grant_timeout_slots = 8;
  // FEC-uncorrectable detection: a cell corrupted on the data path is
  // discarded at the egress and the go-back-N layer re-requests it
  // after this link-RTT-derived timeout.
  int arq_timeout_slots = 8;
  // After the measurement window, keep stepping (arrivals off) until
  // every queue is empty or this budget runs out — the invariant
  // checker needs the post-recovery drain to confirm exactly-once
  // delivery. 0 (default) skips the drain entirely.
  std::uint64_t drain_max_slots = 0;
  // Cell-lifecycle tracing / RunReport export; off by default, no
  // measurable cost when off (see src/telemetry/).
  telemetry::TelemetryConfig telemetry;
  // Runtime invariant verification (conservation / liveness / ordering);
  // always on — pure accounting, never changes behavior. allow_stranded
  // is forced on when the plan carries a permanent fault.
  chaos::MonitorConfig monitor;
};

struct SwitchSimResult {
  std::string scheduler;
  double offered_load = 0.0;
  double throughput = 0.0;           // delivered cells / slot / port
  std::uint64_t delivered = 0;
  // Delays in cell cycles, ingress arrival -> egress line departure.
  double mean_delay = 0.0;
  double p99_delay = 0.0;
  double max_delay = 0.0;
  double mean_control_delay = 0.0;   // control-class cells only
  double mean_data_delay = 0.0;
  // Request-to-grant latency in cycles (Fig. 6 metric).
  double mean_grant_latency = 0.0;
  double p99_grant_latency = 0.0;
  int max_voq_depth = 0;
  int max_egress_depth = 0;
  std::uint64_t out_of_order = 0;    // must be 0 (Table 1)
  std::uint64_t crossbar_reconfigs = 0;
  // Degraded-operation accounting (fault injection / recovery).
  std::uint64_t offered = 0;           // cells injected, warmup included
  std::uint64_t grant_corruptions = 0;
  std::uint64_t retransmissions = 0;   // ARQ re-requests after FEC loss
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_repaired = 0;
  std::uint64_t faults_recovered = 0;
  double mean_recovery_slots = 0.0;    // repair -> backlog back to baseline
  double max_recovery_slots = 0.0;
  // Worst 512-slot window throughput during measurement — the depth of
  // the dip a mid-run fault carves into the delivery rate.
  double min_window_throughput = 0.0;
  std::uint64_t drained_slots = 0;
  // End-of-run invariant verdict over every cell offered (all phases):
  // delivered exactly once, in per-flow order, none missing.
  bool exactly_once_in_order = false;
  std::uint64_t duplicates = 0;
  std::uint64_t missing = 0;
  // Runtime invariant verdict (chaos::InvariantMonitor): violations of
  // conservation / credit / occupancy / liveness observed during the run.
  std::uint64_t invariant_violations = 0;
  std::string first_violation;  // "" when clean
};

class SwitchSim {
 public:
  SwitchSim(SwitchSimConfig cfg, std::unique_ptr<sim::TrafficGen> traffic);

  /// Runs warmup + measurement and returns the aggregated result.
  /// Equivalent to `while (advance_slot()) {}` followed by finalize().
  SwitchSimResult run();

  /// Incremental execution for checkpoint/restore: advances exactly one
  /// slot of whichever phase is next (warmup, then measurement, then the
  /// optional drain). Returns false once the run is complete.
  bool advance_slot();

  /// Assembles the result after advance_slot() has returned false.
  /// run() == drive-to-completion + finalize(); call once per run.
  SwitchSimResult finalize();

  /// Next slot to execute (also: slots executed so far).
  std::uint64_t current_slot() const { return now_; }

  /// Checkpoint/restore (osmosis.ckpt.v1). save_state emits one chunk
  /// per component; load_state expects a simulator freshly constructed
  /// from the *same* config and traffic spec, and throws ckpt::Error on
  /// structural mismatch. Resuming a restored simulator reproduces the
  /// uninterrupted run bit-for-bit.
  void save_state(ckpt::Writer& w) const;
  void load_state(const ckpt::Reader& r);

  /// Access to the scheduler (tests poke FC hooks through this).
  Scheduler& scheduler() { return *sched_; }

  /// Telemetry access (trace ring, stage book, counters).
  telemetry::Telemetry& telemetry() { return telem_; }
  const telemetry::Telemetry& telemetry() const { return telem_; }

  /// Component health view (§VI.A monitoring): every FRU of the switch
  /// plus the transitions the fault injector drove, with timestamps.
  const mgmt::HealthRegistry& health() const { return health_; }

  /// Runtime invariant verdict (chaos soak layer).
  const chaos::InvariantMonitor& monitor() const { return monitor_; }

  /// Structured run export; meaningful after run() with
  /// cfg.telemetry.enabled. Stage histograms are in cell cycles.
  telemetry::RunReport report() const;

  /// Raw measurement histograms (cell cycles), for exact cross-run
  /// aggregation via sim::Histogram::merge (the campaign runner's
  /// shard-merge path; summaries alone cannot merge exactly).
  const sim::Histogram& delay_histogram() const { return delay_hist_; }
  const sim::Histogram& grant_latency_histogram() const {
    return grant_latency_;
  }

 private:
  void step(std::uint64_t t, bool measuring, bool inject_traffic);
  /// Records one time-series row (DESIGN.md §11) after slot `t` when the
  /// sampler is enabled and due. Purely slot-driven, so the recorded
  /// series is identical at any thread count and across checkpoints.
  void sample_series(std::uint64_t t);
  template <class Ar>
  void io_core(Ar& a);
  template <class Ar>
  void io_stats(Ar& a);
  void apply_fault_transitions(std::uint64_t t);
  void set_module_state(int out, int rx, bool failed, std::uint64_t t);
  void block_input_ref(int in);
  void unblock_input_ref(int in);
  std::uint64_t backlog() const;

  SwitchSimConfig cfg_;
  std::unique_ptr<sim::TrafficGen> traffic_;
  // Run-loop position (advance_slot): next slot to execute, plus the
  // 512-slot window accounting formerly local to run().
  std::uint64_t now_ = 0;
  std::uint64_t window_mark_ = 0;
  double min_window_thr_ = -1.0;  // -1 = no full window completed yet
  std::unique_ptr<Scheduler> sched_;
  std::vector<VoqBank> voqs_;
  std::vector<std::deque<Cell>> egress_;       // per output
  std::vector<std::uint64_t> flow_seq_;        // per (src,dst)
  // Requests in flight on the control path: (deliver_slot, in, out).
  struct PendingRequest {
    std::uint64_t deliver_slot = 0;
    int in = -1;
    int out = -1;

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, deliver_slot);
      ckpt::field(a, in);
      ckpt::field(a, out);
    }
  };
  std::deque<PendingRequest> request_pipe_;
  // Issue times of requests, for grant-latency attribution (FIFO per VOQ).
  std::vector<std::deque<std::uint64_t>> request_times_;
  std::optional<phy::BroadcastSelectCrossbar> optical_;
  // Failure state: per output, the physical receiver index behind each
  // logical (capacity-numbered) receiver; per input, dark flag.
  std::vector<std::vector<int>> surviving_rx_;
  std::vector<std::uint8_t> dark_input_;
  int fibers_ = 1;
  int wavelengths_ = 1;

  // ---- runtime fault injection & recovery -------------------------------
  std::optional<faults::FaultInjector> injector_;
  mgmt::HealthRegistry health_;
  chaos::InvariantMonitor monitor_;
  faults::RecoveryTracker recovery_;
  // Per-output receiver-failure flags (static + runtime combined).
  std::vector<std::vector<std::uint8_t>> rx_failed_;
  // Scheduler input-mask refcount: a fiber cut and an adapter stall may
  // overlap on the same input; the mask lifts only when both clear.
  std::vector<int> input_block_depth_;
  // Re-requests pending after a corrupted grant (missed-grant timeout)
  // or a corrupted transfer (ARQ timeout): slot -> (input, output).
  std::multimap<std::uint64_t, std::pair<int, int>> retry_queue_;
  std::uint64_t offered_ = 0;
  std::uint64_t grant_corruptions_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t faults_repaired_ = 0;
  std::uint64_t drained_slots_ = 0;

  // statistics
  sim::Histogram delay_hist_;
  sim::Histogram control_delay_;
  sim::Histogram data_delay_;
  sim::Histogram grant_latency_;
  sim::ThroughputMeter meter_;
  sim::ReorderDetector reorder_;
  int max_egress_depth_ = 0;

  // telemetry
  telemetry::Telemetry telem_;
  std::vector<std::uint64_t> enqueued_per_port_;   // per input
  std::vector<std::uint64_t> delivered_per_port_;  // per output, measured
  std::uint64_t grants_issued_ = 0;
  // Time-series rate cursors: deliveries (all phases) and the previous
  // sample's cursor values, for per-window rates. Checkpointed with the
  // core so a resumed run records identical rows.
  std::uint64_t total_delivered_ = 0;
  std::uint64_t last_sample_slot_ = 0;
  std::uint64_t last_sample_delivered_ = 0;
  std::uint64_t last_sample_grants_ = 0;
};

/// Convenience: build, run, and return the result for a uniform
/// Bernoulli workload (the Fig. 7 sweep helper).
SwitchSimResult run_uniform(const SwitchSimConfig& cfg, double load,
                            std::uint64_t seed);

}  // namespace osmosis::sw
