#pragma once
// Central-scheduler framework for the bufferless crossbar (§III–§V).
//
// The scheduler mirrors every ingress adapter's VOQ occupancy through
// request messages (request(in, out) per arriving cell) and, once per
// cell cycle, emits a set of crossbar grants: a (partial) matching of
// inputs to (output, receiver) pairs. Residual demand bookkeeping is
// shared between the paper's FLPPR and the prior-art pipelined iSLIP so
// the two are compared on identical footing (Fig. 6 / Fig. 7).
//
// Remote flow control (§IV.B) plugs in through block_output(): the
// scheduler "only issues transmission grants for links/buffers that are
// available and performs the necessary bookkeeping".

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/sw/cell.hpp"
#include "src/sw/portset.hpp"

namespace osmosis::sw {

/// Residual (ungranted, unreserved) request counts per (input, output),
/// with per-output candidate masks for O(1) arbiter scans.
class DemandState {
 public:
  explicit DemandState(int ports);

  int ports() const { return ports_; }

  /// A new cell arrived into VOQ (in -> out).
  void add_request(int in, int out);

  /// A matching reserved one cell of (in -> out); the residual shrinks
  /// so no other (sub)scheduler can promise the same cell.
  void reserve(int in, int out);

  /// A queued cell was withdrawn before any grant (adaptive re-steer
  /// moves a VOQ cell to a different output): the pending request must
  /// vanish with it or a later grant would hit an empty FIFO.
  void cancel_request(int in, int out);

  int residual(int in, int out) const;
  std::uint64_t total_residual() const { return total_; }

  /// Inputs with residual demand for `out` (excludes blocked outputs —
  /// the mask is empty while the output is blocked — and blocked inputs).
  const PortSet& candidates(int out) const;

  void block_output(int out);
  void unblock_output(int out);
  bool blocked(int out) const;

  /// Input-side masking: a dark ingress (e.g. a failed broadcast fiber
  /// takes all its WDM inputs off the crossbar) must receive no grants
  /// even though its VOQs report demand.
  void block_input(int in);
  void unblock_input(int in);
  bool input_blocked(int in) const;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, residual_);
    ckpt::field(a, avail_);
    ckpt::field(a, blocked_);
    ckpt::field(a, input_blocked_);
    ckpt::field(a, total_);
    if constexpr (Ar::kLoading) {
      if (residual_.size() !=
              static_cast<std::size_t>(ports_) * static_cast<std::size_t>(
                                                     ports_) ||
          avail_.size() != static_cast<std::size_t>(ports_))
        throw ckpt::Error("DemandState size inconsistent in checkpoint");
    }
  }

 private:
  int index(int in, int out) const { return in * ports_ + out; }

  int ports_;
  std::vector<std::uint32_t> residual_;
  std::vector<PortSet> avail_;     // per output: inputs with residual > 0,
                                   // minus blocked inputs
  PortSet empty_;                  // returned for blocked outputs
  std::vector<std::uint8_t> blocked_;
  std::vector<std::uint8_t> input_blocked_;
  std::uint64_t total_ = 0;
};

/// One round-robin grant/accept iteration over a demand state — the
/// building block of iSLIP, pipelined iSLIP and FLPPR. Owns the
/// per-output grant pointers and per-input accept pointers.
class IslipIteration {
 public:
  explicit IslipIteration(int ports);

  /// Partial matching being accumulated for one future issue slot.
  struct Matching {
    PortSet input_free;             // inputs not yet matched
    std::vector<int> capacity;      // accepts left per output (receivers)
    std::vector<Grant> matches;     // receiver field filled at issue time
    int iterations_run = 0;

    void reset(int ports, int receivers);
    /// Reset with per-output capacities (failure-degraded outputs).
    void reset(int ports, const std::vector<int>& capacities);

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, input_free);
      ckpt::field(a, capacity);
      ckpt::field(a, matches);
      ckpt::field(a, iterations_run);
    }
  };

  /// Runs one grant/accept round. `primary` supplies and pays the
  /// demand; when `shared` is non-null a match additionally requires and
  /// consumes residual there (used by snapshot-based pipelined iSLIP so
  /// two sub-schedulers never promise the same cell).
  /// iSLIP pointer-update rule: pointers move only when
  /// `update_pointers` (callers pass true on a matching's first
  /// iteration), which is what desynchronizes the arbiters.
  void run(DemandState& primary, DemandState* shared, Matching& m,
           bool update_pointers);

  /// Only the round-robin pointers are state; the grant/accept scratch
  /// vectors are cleared at the top of every run().
  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, grant_ptr_);
    ckpt::field(a, accept_ptr_);
  }

 private:
  int ports_;
  std::vector<int> grant_ptr_;   // per output
  std::vector<int> accept_ptr_;  // per input
  // scratch, reused across calls
  std::vector<std::vector<int>> grants_to_input_;
  std::vector<int> granted_inputs_;
};

/// Abstract central scheduler.
class Scheduler {
 public:
  Scheduler(int ports, int receivers);
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  int ports() const { return demand_.ports(); }
  int receivers() const { return receivers_; }

  /// One request per arriving cell (control-path message).
  void request(int in, int out) { demand_.add_request(in, out); }

  /// Withdraws one pending request (the matching cell left the VOQ, e.g.
  /// re-steered to a surviving spine). Only valid for immediate-issue
  /// schedulers: pipelined kinds may hold the demand inside an in-flight
  /// matching snapshot where it can no longer be recalled.
  void cancel(int in, int out) { demand_.cancel_request(in, out); }

  /// Remote-FC hooks (§IV.B). Unblocking never revives an output whose
  /// capacity was set to zero by failure handling.
  void block_output(int out) { demand_.block_output(out); }
  void unblock_output(int out) {
    if (output_capacity(out) > 0) demand_.unblock_output(out);
  }

  /// Failure-handling hooks: mask a dark input entirely, or reduce an
  /// output's usable receiver count (a failed optical switching module
  /// leaves the egress reachable through its surviving receiver — the
  /// dual-receiver architecture's redundancy).
  void block_input(int in) { demand_.block_input(in); }
  void unblock_input(int in) { demand_.unblock_input(in); }
  void set_output_capacity(int out, int capacity);
  int output_capacity(int out) const;

  std::uint64_t outstanding() const { return demand_.total_residual(); }

  /// Advances one cell cycle and returns the grants for this cycle.
  /// Postconditions (checked by tests): each input appears at most once;
  /// each (output, receiver) appears at most once; every grant had
  /// residual demand when matched.
  virtual std::vector<Grant> tick() = 0;

  /// Checkpoint hooks: persist every bit of mutable scheduler state
  /// (residual demand, arbiter pointers, in-flight pipeline matchings,
  /// PRNG). Configuration (ports, receivers, depth) is supplied by
  /// rebuilding the scheduler from the same SchedulerConfig before
  /// load_state; the overrides verify structural agreement and throw
  /// ckpt::Error on mismatch.
  virtual void save_state(ckpt::Sink& s) const;
  virtual void load_state(ckpt::Source& s);

 protected:
  /// Assigns distinct receiver indices per output within one grant set.
  void number_receivers(std::vector<Grant>& grants) const;

  /// Pipelined schedulers keep in-flight partial matchings whose
  /// capacity arrays must shrink immediately when an output degrades;
  /// the base notification fires after set_output_capacity updates the
  /// bookkeeping.
  virtual void on_output_capacity_changed(int /*out*/, int /*capacity*/) {}

  DemandState demand_;
  int receivers_;
  std::vector<int> output_capacity_;  // usable receivers per output
};

/// Scheduler families compared in the paper.
enum class SchedulerKind {
  kIslip,           // k iterations within one cycle (idealized hardware)
  kPim,             // parallel iterative matching, random arbiters
  kPipelinedIslip,  // prior art in Fig. 6: log2(N)-deep pipeline
  kFlppr,           // the paper's contribution [22]
  kTdm,             // demand-oblivious round-robin (BvN-style stage)
  kWfa,             // wavefront arbiter: diagonal-sweep maximal matching
};

/// FLPPR request-filing policy: how the parallel sub-schedulers are
/// served within a cell cycle ([22] §IV discusses filing variants).
enum class FlpprPolicy {
  // The paper's design: the sub-scheduler issuing soonest arbitrates
  // first, so fresh requests land in the earliest grant opportunity —
  // this is what produces the 1-cycle request-to-grant latency.
  kEarliestFirst,
  // Naive fixed service order (ablation): requests fill whichever
  // sub-scheduler happens to come first, spreading grants over the
  // whole pipeline window.
  kFixedOrder,
};

struct SchedulerConfig {
  SchedulerKind kind = SchedulerKind::kFlppr;
  int ports = 64;
  int receivers = 2;      // dual-receiver architecture by default
  int iterations = 0;     // 0 = ceil(log2(ports)), the paper's rule
  std::uint64_t seed = 1; // used by randomized schedulers (PIM)
  FlpprPolicy flppr_policy = FlpprPolicy::kEarliestFirst;
};

std::unique_ptr<Scheduler> make_scheduler(const SchedulerConfig& cfg);

}  // namespace osmosis::sw
