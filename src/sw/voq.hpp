#pragma once
// Virtual Output Queuing ingress adapter (§III, [17]): one FIFO per
// destination output eliminates head-of-line blocking in the bufferless
// crossbar. Each VOQ is further split by traffic class: the paper's
// bimodal HPC traffic wants strict priority for short control packets at
// every buffer output (§IV), so pop() serves the control sub-queue
// first. Order within a class and flow is FIFO, preserving the Table 1
// in-order requirement.

#include <cstdint>
#include <deque>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/sw/cell.hpp"

namespace osmosis::sw {

/// The VOQ bank of one ingress adapter.
class VoqBank {
 public:
  VoqBank(int input, int outputs);

  int input() const { return input_; }
  int outputs() const { return outputs_; }

  /// Enqueues a cell destined to cell.dst.
  void push(const Cell& cell);

  /// Dequeues the next cell for `dst` (control class first). The queue
  /// must be non-empty — the scheduler only grants against known
  /// occupancy, so popping empty indicates a bookkeeping bug.
  Cell pop(int dst);

  /// Cells queued for `dst` (all classes).
  int occupancy(int dst) const;

  /// Total cells across all VOQs of this adapter.
  int total_occupancy() const { return total_; }

  /// Largest single-VOQ depth seen so far (buffer-sizing studies).
  int max_depth_seen() const { return max_depth_; }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, queues_);
    ckpt::field(a, total_);
    ckpt::field(a, max_depth_);
    if constexpr (Ar::kLoading) {
      if (queues_.size() != static_cast<std::size_t>(outputs_))
        throw ckpt::Error("VoqBank queue count inconsistent in checkpoint");
    }
  }

 private:
  struct ClassQueues {
    std::deque<Cell> control;
    std::deque<Cell> data;
    int size() const {
      return static_cast<int>(control.size() + data.size());
    }

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, control);
      ckpt::field(a, data);
    }
  };

  int input_;
  int outputs_;
  std::vector<ClassQueues> queues_;  // one per destination
  int total_ = 0;
  int max_depth_ = 0;
};

}  // namespace osmosis::sw
