#include "src/sw/flppr.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::sw {

FlpprScheduler::FlpprScheduler(int ports, int receivers, int depth,
                               FlpprPolicy policy)
    : Scheduler(ports, receivers),
      depth_(depth > 0 ? depth
                       : util::ceil_log2(static_cast<std::uint64_t>(ports))),
      policy_(policy) {
  if (depth_ < 1) depth_ = 1;
  subs_.reserve(static_cast<std::size_t>(depth_));
  for (int s = 0; s < depth_; ++s) {
    subs_.emplace_back(ports, s);
    subs_.back().matching.reset(ports, receivers);
  }
}

void FlpprScheduler::on_output_capacity_changed(int out, int capacity) {
  for (auto& sub : subs_) {
    int matched = 0;
    for (const auto& m : sub.matching.matches) matched += m.output == out;
    auto& cap = sub.matching.capacity[static_cast<std::size_t>(out)];
    cap = std::min(cap, std::max(0, capacity - matched));
  }
}

std::string FlpprScheduler::name() const {
  std::ostringstream oss;
  oss << "FLPPR(depth=" << depth_
      << (policy_ == FlpprPolicy::kFixedOrder ? ",fixed-order" : "") << ")";
  return oss.str();
}

std::vector<Grant> FlpprScheduler::tick() {
  std::vector<Grant> grants;
  const int now_phase =
      static_cast<int>(t_ % static_cast<std::uint64_t>(depth_));

  // kEarliestFirst (the paper's design): serve sub-schedulers
  // soonest-to-issue first, so a fresh request is matched by the
  // earliest grant opportunity — the core FLPPR idea. kFixedOrder
  // (ablation): serve them in fixed index order regardless of issue
  // proximity; requests then land in arbitrary pipeline positions.
  for (int k = 0; k < depth_; ++k) {
    const int phase = policy_ == FlpprPolicy::kEarliestFirst
                          ? (now_phase + k) % depth_
                          : k;  // fixed order, blind to issue proximity
    Sub& sub = subs_[static_cast<std::size_t>(phase)];
    const int dist = (phase - now_phase + depth_) % depth_;
    sub.engine.run(demand_, nullptr, sub.matching,
                   /*update_pointers=*/sub.matching.iterations_run == 0);
    if (dist == 0) {
      // This sub-scheduler's window ends now: issue and start over.
      grants = std::move(sub.matching.matches);
      sub.matching.reset(ports(), output_capacity_);
    }
  }
  ++t_;
  number_receivers(grants);
  return grants;
}

}  // namespace osmosis::sw
