#pragma once
// Fixed-capacity bitmask over switch ports with circular first-set
// search — the core primitive of the round-robin grant/accept arbiters.
// For the demonstrator's 64 ports this is a single machine word, making
// one scheduler iteration O(ports/64) per output rather than O(ports).

#include <cstdint>
#include <vector>

namespace osmosis::sw {

class PortSet {
 public:
  explicit PortSet(int ports = 0);

  int size() const { return ports_; }

  void set(int p);
  void clear(int p);
  bool test(int p) const;
  void clear_all();
  void set_all();

  bool any() const;
  int count() const;

  /// First set bit at or after `from`, wrapping circularly; -1 if empty.
  /// This is the round-robin pointer scan of iSLIP/FLPPR.
  int next_circular(int from) const;

  /// In-place intersection with another set of the same size.
  PortSet& operator&=(const PortSet& other);

 private:
  int word_count() const { return static_cast<int>(words_.size()); }

  int ports_;
  std::vector<std::uint64_t> words_;
};

}  // namespace osmosis::sw
