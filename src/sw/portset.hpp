#pragma once
// Fixed-capacity bitmask over switch ports with circular first-set
// search — the core primitive of the round-robin grant/accept arbiters.
// For the demonstrator's 64 ports this is a single machine word, making
// one scheduler iteration O(ports/64) per output rather than O(ports).

#include <cstdint>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::sw {

class PortSet {
 public:
  explicit PortSet(int ports = 0);

  int size() const { return ports_; }

  void set(int p);
  void clear(int p);
  bool test(int p) const;
  void clear_all();
  void set_all();

  bool any() const;
  int count() const;

  /// First set bit at or after `from`, wrapping circularly; -1 if empty.
  /// This is the round-robin pointer scan of iSLIP/FLPPR.
  int next_circular(int from) const;

  /// In-place intersection with another set of the same size.
  PortSet& operator&=(const PortSet& other);

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, ports_);
    ckpt::field(a, words_);
    if constexpr (Ar::kLoading) {
      if (words_.size() != static_cast<std::size_t>((ports_ + 63) / 64))
        throw ckpt::Error("PortSet word count inconsistent in checkpoint");
    }
  }

 private:
  int word_count() const { return static_cast<int>(words_.size()); }

  int ports_;
  std::vector<std::uint64_t> words_;
};

}  // namespace osmosis::sw
