#pragma once
// FLPPR — Fast Low-latency Parallel Pipelined aRbitration [22], the
// paper's key scheduler novelty (§V, §VI.B, Fig. 6).
//
// Like the prior art, K = log2(N) sub-schedulers each build a matching
// over K cycles (one grant/accept iteration per cycle) and issue in
// staggered rotation, so the crossbar still gets a fresh K-iteration
// matching every cycle. The difference: sub-schedulers do NOT work from
// a start-of-window snapshot — every cycle, every in-flight
// sub-scheduler arbitrates over the *live* residual demand, and the
// sub-schedulers are served in order of time-to-issue (soonest first).
// A request that arrives in an empty switch is therefore picked up by
// the sub-scheduler issuing THAT cycle and granted immediately: a
// single-cell request-to-grant latency at light to moderate load,
// versus log2(N) cycles for the snapshot pipeline. Under heavy load the
// matchings still accumulate K iterations, so throughput matches
// iterative iSLIP.

#include <vector>

#include "src/sw/scheduler.hpp"

namespace osmosis::sw {

class FlpprScheduler final : public Scheduler {
 public:
  /// `depth` = 0 picks ceil(log2(ports)) parallel sub-schedulers.
  FlpprScheduler(int ports, int receivers, int depth,
                 FlpprPolicy policy = FlpprPolicy::kEarliestFirst);

  std::string name() const override;
  std::vector<Grant> tick() override;

  int depth() const { return depth_; }

  /// In-flight sub-scheduler matchings and arbiter pointers are exactly
  /// the pipeline state the checkpoint contract calls out; depth/phase
  /// are configuration and only re-checked.
  void save_state(ckpt::Sink& s) const override {
    Scheduler::save_state(s);
    auto* self = const_cast<FlpprScheduler*>(this);
    ckpt::field(s, self->t_);
    std::uint64_t n = subs_.size();
    ckpt::field(s, n);
    for (auto& sub : self->subs_) {
      ckpt::field(s, sub.engine);
      ckpt::field(s, sub.matching);
    }
  }
  void load_state(ckpt::Source& s) override {
    Scheduler::load_state(s);
    ckpt::field(s, t_);
    std::uint64_t n = 0;
    ckpt::field(s, n);
    if (n != subs_.size())
      throw ckpt::Error("FLPPR pipeline depth mismatch in checkpoint");
    for (auto& sub : subs_) {
      ckpt::field(s, sub.engine);
      ckpt::field(s, sub.matching);
    }
  }

 protected:
  void on_output_capacity_changed(int out, int capacity) override;

 private:
  struct Sub {
    IslipIteration engine;
    IslipIteration::Matching matching;
    int phase;  // issues when t % depth == phase

    Sub(int ports, int phase_in) : engine(ports), phase(phase_in) {}
  };

  int depth_;
  FlpprPolicy policy_;
  std::vector<Sub> subs_;
  std::uint64_t t_ = 0;
};

}  // namespace osmosis::sw
