#include "src/sw/switch_sim.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::sw {

SwitchSim::SwitchSim(SwitchSimConfig cfg,
                     std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg), traffic_(std::move(traffic)), telem_(cfg.telemetry) {
  OSMOSIS_REQUIRE(traffic_ != nullptr, "traffic generator required");
  OSMOSIS_REQUIRE(traffic_->ports() == cfg_.ports,
                  "traffic generator built for " << traffic_->ports()
                                                 << " ports, switch has "
                                                 << cfg_.ports);
  OSMOSIS_REQUIRE(cfg_.egress_line_rate >= 1, "egress line rate must be >= 1");
  cfg_.sched.ports = cfg_.ports;
  sched_ = make_scheduler(cfg_.sched);
  voqs_.reserve(static_cast<std::size_t>(cfg_.ports));
  for (int i = 0; i < cfg_.ports; ++i) voqs_.emplace_back(i, cfg_.ports);
  egress_.resize(static_cast<std::size_t>(cfg_.ports));
  // One sequence stream per (input, output, traffic class).
  flow_seq_.assign(static_cast<std::size_t>(cfg_.ports) *
                       static_cast<std::size_t>(cfg_.ports) * 2,
                   0);
  if (cfg_.measure_grant_latency)
    request_times_.resize(static_cast<std::size_t>(cfg_.ports) *
                          static_cast<std::size_t>(cfg_.ports));
  enqueued_per_port_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  delivered_per_port_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  // Square-ish fiber/wavelength split, used for optical validation and
  // for mapping failed fibers to their dark ingress ports.
  int fibers = 1;
  while (fibers * fibers < cfg_.ports) fibers <<= 1;
  OSMOSIS_REQUIRE(cfg_.ports % fibers == 0,
                  "port count must factor into fibers * wavelengths");
  const int wavelengths = cfg_.ports / fibers;
  if (cfg_.validate_optical_path) {
    phy::BroadcastSelectConfig ocfg;
    ocfg.ports = cfg_.ports;
    ocfg.fibers = fibers;
    ocfg.wavelengths = wavelengths;
    ocfg.receivers_per_egress = std::max(1, cfg_.sched.receivers);
    optical_.emplace(ocfg);
  }

  // ---- failure injection ------------------------------------------------
  const int receivers = std::max(1, cfg_.sched.receivers);
  std::vector<std::vector<std::uint8_t>> rx_failed(
      static_cast<std::size_t>(cfg_.ports),
      std::vector<std::uint8_t>(static_cast<std::size_t>(receivers), 0));
  for (const auto& [out, rx] : cfg_.failed_receivers) {
    OSMOSIS_REQUIRE(out >= 0 && out < cfg_.ports && rx >= 0 &&
                        rx < receivers,
                    "failed receiver (" << out << "," << rx
                                        << ") out of range");
    rx_failed[static_cast<std::size_t>(out)][static_cast<std::size_t>(rx)] = 1;
    if (optical_) optical_->fail_module(out, rx);
  }
  surviving_rx_.resize(static_cast<std::size_t>(cfg_.ports));
  for (int out = 0; out < cfg_.ports; ++out) {
    auto& survivors = surviving_rx_[static_cast<std::size_t>(out)];
    for (int rx = 0; rx < receivers; ++rx)
      if (!rx_failed[static_cast<std::size_t>(out)]
                    [static_cast<std::size_t>(rx)])
        survivors.push_back(rx);
    sched_->set_output_capacity(out, static_cast<int>(survivors.size()));
  }

  dark_input_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  for (const int f : cfg_.failed_fibers) {
    OSMOSIS_REQUIRE(f >= 0 && f < fibers, "failed fiber out of range");
    if (optical_) optical_->fail_fiber(f);
    for (int w = 0; w < wavelengths; ++w) {
      const int in = f * wavelengths + w;
      dark_input_[static_cast<std::size_t>(in)] = 1;
      sched_->block_input(in);
    }
  }
}

void SwitchSim::step(std::uint64_t t, bool measuring) {
  const int n = cfg_.ports;

  // 1. Arrivals into the VOQs; requests enter the control pipe. Dark
  //    inputs (failed broadcast fiber) are offline hosts: no arrivals.
  for (int in = 0; in < n; ++in) {
    sim::Arrival a;
    if (!traffic_->sample(in, a)) continue;
    if (dark_input_[static_cast<std::size_t>(in)]) continue;
    // Ordering is guaranteed per (input, output, class): the two classes
    // are independent streams (control has strict priority and may
    // legitimately overtake data of the same port pair).
    const std::size_t flow =
        (static_cast<std::size_t>(in) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(a.dst)) *
            2 +
        (a.cls == sim::TrafficClass::kControl ? 0 : 1);
    Cell cell;
    cell.src = in;
    cell.dst = a.dst;
    cell.seq = flow_seq_[flow]++;
    cell.arrival_slot = t;
    cell.cls = a.cls;
    cell.tag = a.tag;
    cell.trace = telem_.begin_cell(in, a.dst, static_cast<double>(t));
    telem_.mark(cell.trace, telemetry::Stage::kRequest,
                static_cast<double>(t + static_cast<std::uint64_t>(
                                            cfg_.request_delay_slots)));
    ++enqueued_per_port_[static_cast<std::size_t>(in)];
    voqs_[static_cast<std::size_t>(in)].push(cell);
    request_pipe_.push_back(PendingRequest{
        t + static_cast<std::uint64_t>(cfg_.request_delay_slots), in, a.dst});
  }

  // 2. Control-path delivery of requests to the scheduler.
  while (!request_pipe_.empty() && request_pipe_.front().deliver_slot <= t) {
    const PendingRequest req = request_pipe_.front();
    request_pipe_.pop_front();
    sched_->request(req.in, req.out);
    if (cfg_.measure_grant_latency)
      request_times_[static_cast<std::size_t>(req.in) *
                         static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(req.out)]
          .push_back(t);
  }

  // 3. The central scheduler arbitrates this cell cycle.
  const std::vector<Grant> grants = sched_->tick();

  // 4. Crossbar transfer: granted cells move VOQ -> egress queue.
  if (optical_) optical_->release_all();
  for (const Grant& g : grants) {
    if (cfg_.measure_grant_latency) {
      auto& times = request_times_[static_cast<std::size_t>(g.input) *
                                       static_cast<std::size_t>(n) +
                                   static_cast<std::size_t>(g.output)];
      OSMOSIS_REQUIRE(!times.empty(), "grant without outstanding request");
      const std::uint64_t requested = times.front();
      times.pop_front();
      if (measuring)
        grant_latency_.add(static_cast<double>(t - requested) + 1.0);
    }
    // Logical receiver index -> surviving physical switching module.
    const auto& survivors = surviving_rx_[static_cast<std::size_t>(g.output)];
    OSMOSIS_REQUIRE(g.receiver >= 0 &&
                        g.receiver < static_cast<int>(survivors.size()),
                    "grant to receiver " << g.receiver << " of output "
                                         << g.output << " exceeds its "
                                         << survivors.size()
                                         << " surviving module(s)");
    const int phys_rx = survivors[static_cast<std::size_t>(g.receiver)];
    if (optical_) {
      optical_->connect(g.input, g.output, phys_rx);
      OSMOSIS_REQUIRE(optical_->selected_input(g.output, phys_rx) == g.input,
                      "optical path does not carry the granted input");
    }
    Cell cell = voqs_[static_cast<std::size_t>(g.input)].pop(g.output);
    OSMOSIS_REQUIRE(cell.dst == g.output, "VOQ returned a mis-routed cell");
    // The crossbar transfer occupies this cell cycle: granted at t,
    // landed on the egress queue at t + 1.
    telem_.mark(cell.trace, telemetry::Stage::kGrant, static_cast<double>(t));
    telem_.mark(cell.trace, telemetry::Stage::kTransmit,
                static_cast<double>(t) + 1.0);
    ++grants_issued_;
    egress_[static_cast<std::size_t>(g.output)].push_back(cell);
  }
  for (const auto& q : egress_)
    max_egress_depth_ = std::max(max_egress_depth_, static_cast<int>(q.size()));

  // 5. Egress lines drain.
  for (int out = 0; out < n; ++out) {
    auto& q = egress_[static_cast<std::size_t>(out)];
    for (int k = 0; k < cfg_.egress_line_rate && !q.empty(); ++k) {
      const Cell cell = q.front();
      q.pop_front();
      // +1: the crossbar transfer itself occupies this cell cycle.
      const double delay = static_cast<double>(t - cell.arrival_slot) + 1.0;
      reorder_.deliver(cell.src,
                       cell.dst * 2 + (cell.cls == sim::TrafficClass::kControl
                                           ? 0
                                           : 1),
                       cell.seq);
      if (cfg_.on_delivery) cfg_.on_delivery(cell, t);
      telem_.finish_cell(cell.trace, static_cast<double>(t) + 1.0, measuring);
      if (measuring) {
        delay_hist_.add(delay);
        (cell.cls == sim::TrafficClass::kControl ? control_delay_
                                                 : data_delay_)
            .add(delay);
        meter_.add_delivery();
        ++delivered_per_port_[static_cast<std::size_t>(out)];
      }
    }
  }
}

SwitchSimResult SwitchSim::run() {
  for (std::uint64_t t = 0; t < cfg_.warmup_slots; ++t) step(t, false);
  for (std::uint64_t t = cfg_.warmup_slots;
       t < cfg_.warmup_slots + cfg_.measure_slots; ++t) {
    step(t, true);
    meter_.advance_slots(1, static_cast<std::uint64_t>(cfg_.ports));
  }

  SwitchSimResult r;
  r.scheduler = sched_->name();
  r.offered_load = traffic_->offered_load();
  r.throughput = meter_.utilization();
  r.delivered = delay_hist_.count();
  r.mean_delay = delay_hist_.mean();
  r.p99_delay = delay_hist_.p99();
  r.max_delay = delay_hist_.max();
  r.mean_control_delay = control_delay_.mean();
  r.mean_data_delay = data_delay_.mean();
  r.mean_grant_latency = grant_latency_.mean();
  r.p99_grant_latency = grant_latency_.p99();
  for (const auto& v : voqs_) r.max_voq_depth = std::max(r.max_voq_depth,
                                                         v.max_depth_seen());
  r.max_egress_depth = max_egress_depth_;
  r.out_of_order = reorder_.out_of_order();
  if (optical_) r.crossbar_reconfigs = optical_->reconfigurations();

  if (telem_.enabled()) {
    auto& ctr = telem_.counters();
    for (int p = 0; p < cfg_.ports; ++p) {
      const std::string port = std::to_string(p);
      ctr.add("ingress." + port + ".enqueued",
              static_cast<double>(enqueued_per_port_[static_cast<std::size_t>(p)]));
      ctr.add("egress." + port + ".delivered",
              static_cast<double>(delivered_per_port_[static_cast<std::size_t>(p)]));
      ctr.set_gauge("ingress." + port + ".max_voq_depth",
                    voqs_[static_cast<std::size_t>(p)].max_depth_seen());
    }
    ctr.add("sched.grants", static_cast<double>(grants_issued_));
    ctr.add("switch.delivered", static_cast<double>(r.delivered));
    ctr.add("switch.out_of_order", static_cast<double>(r.out_of_order));
    ctr.set_gauge("egress.max_depth", max_egress_depth_);
    if (optical_)
      ctr.add("crossbar.reconfigs", static_cast<double>(r.crossbar_reconfigs));
  }
  return r;
}

telemetry::RunReport SwitchSim::report() const {
  telemetry::RunReport r = telem_.make_report("SwitchSim", "cycles");
  r.config["ports"] = cfg_.ports;
  r.config["receivers"] = cfg_.sched.receivers;
  r.config["egress_line_rate"] = cfg_.egress_line_rate;
  r.config["request_delay_slots"] = cfg_.request_delay_slots;
  r.config["warmup_slots"] = static_cast<double>(cfg_.warmup_slots);
  r.config["measure_slots"] = static_cast<double>(cfg_.measure_slots);
  r.config["offered_load"] = traffic_->offered_load();
  r.config["telemetry.sample_every"] = cfg_.telemetry.sample_every;
  r.info["scheduler"] = sched_->name();
  r.histograms.emplace("delay",
                       telemetry::HistogramSummary::of(delay_hist_));
  r.histograms.emplace("grant_latency",
                       telemetry::HistogramSummary::of(grant_latency_));
  r.histograms.emplace("control_delay",
                       telemetry::HistogramSummary::of(control_delay_));
  r.histograms.emplace("data_delay",
                       telemetry::HistogramSummary::of(data_delay_));
  return r;
}

SwitchSimResult run_uniform(const SwitchSimConfig& cfg, double load,
                            std::uint64_t seed) {
  SwitchSim sim(cfg, sim::make_uniform(cfg.ports, load, seed));
  return sim.run();
}

}  // namespace osmosis::sw
