#include "src/sw/switch_sim.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::sw {

SwitchSim::SwitchSim(SwitchSimConfig cfg,
                     std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg), traffic_(std::move(traffic)) {
  OSMOSIS_REQUIRE(traffic_ != nullptr, "traffic generator required");
  OSMOSIS_REQUIRE(traffic_->ports() == cfg_.ports,
                  "traffic generator built for " << traffic_->ports()
                                                 << " ports, switch has "
                                                 << cfg_.ports);
  OSMOSIS_REQUIRE(cfg_.egress_line_rate >= 1, "egress line rate must be >= 1");
  cfg_.sched.ports = cfg_.ports;
  sched_ = make_scheduler(cfg_.sched);
  voqs_.reserve(static_cast<std::size_t>(cfg_.ports));
  for (int i = 0; i < cfg_.ports; ++i) voqs_.emplace_back(i, cfg_.ports);
  egress_.resize(static_cast<std::size_t>(cfg_.ports));
  // One sequence stream per (input, output, traffic class).
  flow_seq_.assign(static_cast<std::size_t>(cfg_.ports) *
                       static_cast<std::size_t>(cfg_.ports) * 2,
                   0);
  if (cfg_.measure_grant_latency)
    request_times_.resize(static_cast<std::size_t>(cfg_.ports) *
                          static_cast<std::size_t>(cfg_.ports));
  // Square-ish fiber/wavelength split, used for optical validation and
  // for mapping failed fibers to their dark ingress ports.
  int fibers = 1;
  while (fibers * fibers < cfg_.ports) fibers <<= 1;
  OSMOSIS_REQUIRE(cfg_.ports % fibers == 0,
                  "port count must factor into fibers * wavelengths");
  const int wavelengths = cfg_.ports / fibers;
  if (cfg_.validate_optical_path) {
    phy::BroadcastSelectConfig ocfg;
    ocfg.ports = cfg_.ports;
    ocfg.fibers = fibers;
    ocfg.wavelengths = wavelengths;
    ocfg.receivers_per_egress = std::max(1, cfg_.sched.receivers);
    optical_.emplace(ocfg);
  }

  // ---- failure injection ------------------------------------------------
  const int receivers = std::max(1, cfg_.sched.receivers);
  std::vector<std::vector<std::uint8_t>> rx_failed(
      static_cast<std::size_t>(cfg_.ports),
      std::vector<std::uint8_t>(static_cast<std::size_t>(receivers), 0));
  for (const auto& [out, rx] : cfg_.failed_receivers) {
    OSMOSIS_REQUIRE(out >= 0 && out < cfg_.ports && rx >= 0 &&
                        rx < receivers,
                    "failed receiver (" << out << "," << rx
                                        << ") out of range");
    rx_failed[static_cast<std::size_t>(out)][static_cast<std::size_t>(rx)] = 1;
    if (optical_) optical_->fail_module(out, rx);
  }
  surviving_rx_.resize(static_cast<std::size_t>(cfg_.ports));
  for (int out = 0; out < cfg_.ports; ++out) {
    auto& survivors = surviving_rx_[static_cast<std::size_t>(out)];
    for (int rx = 0; rx < receivers; ++rx)
      if (!rx_failed[static_cast<std::size_t>(out)]
                    [static_cast<std::size_t>(rx)])
        survivors.push_back(rx);
    sched_->set_output_capacity(out, static_cast<int>(survivors.size()));
  }

  dark_input_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  for (const int f : cfg_.failed_fibers) {
    OSMOSIS_REQUIRE(f >= 0 && f < fibers, "failed fiber out of range");
    if (optical_) optical_->fail_fiber(f);
    for (int w = 0; w < wavelengths; ++w) {
      const int in = f * wavelengths + w;
      dark_input_[static_cast<std::size_t>(in)] = 1;
      sched_->block_input(in);
    }
  }
}

void SwitchSim::step(std::uint64_t t, bool measuring) {
  const int n = cfg_.ports;

  // 1. Arrivals into the VOQs; requests enter the control pipe. Dark
  //    inputs (failed broadcast fiber) are offline hosts: no arrivals.
  for (int in = 0; in < n; ++in) {
    sim::Arrival a;
    if (!traffic_->sample(in, a)) continue;
    if (dark_input_[static_cast<std::size_t>(in)]) continue;
    // Ordering is guaranteed per (input, output, class): the two classes
    // are independent streams (control has strict priority and may
    // legitimately overtake data of the same port pair).
    const std::size_t flow =
        (static_cast<std::size_t>(in) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(a.dst)) *
            2 +
        (a.cls == sim::TrafficClass::kControl ? 0 : 1);
    Cell cell;
    cell.src = in;
    cell.dst = a.dst;
    cell.seq = flow_seq_[flow]++;
    cell.arrival_slot = t;
    cell.cls = a.cls;
    cell.tag = a.tag;
    voqs_[static_cast<std::size_t>(in)].push(cell);
    request_pipe_.push_back(PendingRequest{
        t + static_cast<std::uint64_t>(cfg_.request_delay_slots), in, a.dst});
  }

  // 2. Control-path delivery of requests to the scheduler.
  while (!request_pipe_.empty() && request_pipe_.front().deliver_slot <= t) {
    const PendingRequest req = request_pipe_.front();
    request_pipe_.pop_front();
    sched_->request(req.in, req.out);
    if (cfg_.measure_grant_latency)
      request_times_[static_cast<std::size_t>(req.in) *
                         static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(req.out)]
          .push_back(t);
  }

  // 3. The central scheduler arbitrates this cell cycle.
  const std::vector<Grant> grants = sched_->tick();

  // 4. Crossbar transfer: granted cells move VOQ -> egress queue.
  if (optical_) optical_->release_all();
  for (const Grant& g : grants) {
    if (cfg_.measure_grant_latency) {
      auto& times = request_times_[static_cast<std::size_t>(g.input) *
                                       static_cast<std::size_t>(n) +
                                   static_cast<std::size_t>(g.output)];
      OSMOSIS_REQUIRE(!times.empty(), "grant without outstanding request");
      const std::uint64_t requested = times.front();
      times.pop_front();
      if (measuring)
        grant_latency_.add(static_cast<double>(t - requested) + 1.0);
    }
    // Logical receiver index -> surviving physical switching module.
    const auto& survivors = surviving_rx_[static_cast<std::size_t>(g.output)];
    OSMOSIS_REQUIRE(g.receiver >= 0 &&
                        g.receiver < static_cast<int>(survivors.size()),
                    "grant to receiver " << g.receiver << " of output "
                                         << g.output << " exceeds its "
                                         << survivors.size()
                                         << " surviving module(s)");
    const int phys_rx = survivors[static_cast<std::size_t>(g.receiver)];
    if (optical_) {
      optical_->connect(g.input, g.output, phys_rx);
      OSMOSIS_REQUIRE(optical_->selected_input(g.output, phys_rx) == g.input,
                      "optical path does not carry the granted input");
    }
    Cell cell = voqs_[static_cast<std::size_t>(g.input)].pop(g.output);
    OSMOSIS_REQUIRE(cell.dst == g.output, "VOQ returned a mis-routed cell");
    egress_[static_cast<std::size_t>(g.output)].push_back(cell);
  }
  for (const auto& q : egress_)
    max_egress_depth_ = std::max(max_egress_depth_, static_cast<int>(q.size()));

  // 5. Egress lines drain.
  for (int out = 0; out < n; ++out) {
    auto& q = egress_[static_cast<std::size_t>(out)];
    for (int k = 0; k < cfg_.egress_line_rate && !q.empty(); ++k) {
      const Cell cell = q.front();
      q.pop_front();
      // +1: the crossbar transfer itself occupies this cell cycle.
      const double delay = static_cast<double>(t - cell.arrival_slot) + 1.0;
      reorder_.deliver(cell.src,
                       cell.dst * 2 + (cell.cls == sim::TrafficClass::kControl
                                           ? 0
                                           : 1),
                       cell.seq);
      if (cfg_.on_delivery) cfg_.on_delivery(cell, t);
      if (measuring) {
        delay_hist_.add(delay);
        (cell.cls == sim::TrafficClass::kControl ? control_delay_
                                                 : data_delay_)
            .add(delay);
        meter_.add_delivery();
      }
    }
  }
}

SwitchSimResult SwitchSim::run() {
  for (std::uint64_t t = 0; t < cfg_.warmup_slots; ++t) step(t, false);
  for (std::uint64_t t = cfg_.warmup_slots;
       t < cfg_.warmup_slots + cfg_.measure_slots; ++t) {
    step(t, true);
    meter_.advance_slots(1, static_cast<std::uint64_t>(cfg_.ports));
  }

  SwitchSimResult r;
  r.scheduler = sched_->name();
  r.offered_load = traffic_->offered_load();
  r.throughput = meter_.utilization();
  r.delivered = delay_hist_.count();
  r.mean_delay = delay_hist_.mean();
  r.p99_delay = delay_hist_.p99();
  r.max_delay = delay_hist_.max();
  r.mean_control_delay = control_delay_.mean();
  r.mean_data_delay = data_delay_.mean();
  r.mean_grant_latency = grant_latency_.mean();
  r.p99_grant_latency = grant_latency_.p99();
  for (const auto& v : voqs_) r.max_voq_depth = std::max(r.max_voq_depth,
                                                         v.max_depth_seen());
  r.max_egress_depth = max_egress_depth_;
  r.out_of_order = reorder_.out_of_order();
  if (optical_) r.crossbar_reconfigs = optical_->reconfigurations();
  return r;
}

SwitchSimResult run_uniform(const SwitchSimConfig& cfg, double load,
                            std::uint64_t seed) {
  SwitchSim sim(cfg, sim::make_uniform(cfg.ports, load, seed));
  return sim.run();
}

}  // namespace osmosis::sw
