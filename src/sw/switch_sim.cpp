#include "src/sw/switch_sim.hpp"

#include <algorithm>
#include <sstream>

#include "src/prof/profiler.hpp"
#include "src/util/log.hpp"

namespace osmosis::sw {

namespace {

std::string module_name(int out, int rx) {
  std::ostringstream oss;
  oss << "module/" << out << '/' << rx;
  return oss.str();
}

std::string fiber_name(int f) {
  std::ostringstream oss;
  oss << "broadcast/" << f;
  return oss.str();
}

std::string adapter_name(int in) {
  std::ostringstream oss;
  oss << "adapter/" << in;
  return oss.str();
}

std::string link_name(int in) {
  if (in < 0) return "link/all";
  std::ostringstream oss;
  oss << "link/" << in;
  return oss.str();
}

// Unique recovery-tracker key per plan entry (two faults of the same
// kind on the same component at different times stay distinct).
std::string fault_key(const faults::FaultEvent& e) {
  std::ostringstream oss;
  oss << faults::to_string(e.kind) << '/' << e.a << '/' << e.b << '@'
      << e.at_slot;
  return oss.str();
}

}  // namespace

SwitchSim::SwitchSim(SwitchSimConfig cfg,
                     std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg), traffic_(std::move(traffic)), telem_(cfg.telemetry) {
  OSMOSIS_REQUIRE(traffic_ != nullptr, "traffic generator required");
  OSMOSIS_REQUIRE(traffic_->ports() == cfg_.ports,
                  "traffic generator built for " << traffic_->ports()
                                                 << " ports, switch has "
                                                 << cfg_.ports);
  OSMOSIS_REQUIRE(cfg_.egress_line_rate >= 1, "egress line rate must be >= 1");
  OSMOSIS_REQUIRE(cfg_.grant_timeout_slots >= 1 && cfg_.arq_timeout_slots >= 1,
                  "fault-recovery timeouts must be >= 1 slot");
  cfg_.sched.ports = cfg_.ports;
  sched_ = make_scheduler(cfg_.sched);
  {
    // A permanent fault (or a static failure, which may take an output's
    // last receiver) can legitimately strand cells past the drain.
    chaos::MonitorConfig mc = cfg_.monitor;
    mc.allow_stranded = mc.allow_stranded ||
                        cfg_.fault_plan.has_permanent_fault() ||
                        !cfg_.failed_receivers.empty() ||
                        !cfg_.failed_fibers.empty();
    mc.expect_drain = cfg_.drain_max_slots > 0;
    monitor_.configure(mc);
  }
  voqs_.reserve(static_cast<std::size_t>(cfg_.ports));
  for (int i = 0; i < cfg_.ports; ++i) voqs_.emplace_back(i, cfg_.ports);
  egress_.resize(static_cast<std::size_t>(cfg_.ports));
  // One sequence stream per (input, output, traffic class).
  flow_seq_.assign(static_cast<std::size_t>(cfg_.ports) *
                       static_cast<std::size_t>(cfg_.ports) * 2,
                   0);
  if (cfg_.measure_grant_latency)
    request_times_.resize(static_cast<std::size_t>(cfg_.ports) *
                          static_cast<std::size_t>(cfg_.ports));
  enqueued_per_port_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  delivered_per_port_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  telem_.series().set_channels({"backlog", "voq_backlog", "voq_max",
                                "egress_backlog", "retry_queue",
                                "throughput", "link_util", "sched_matches"});
  // Square-ish fiber/wavelength split, used for optical validation and
  // for mapping failed fibers to their dark ingress ports.
  fibers_ = 1;
  while (fibers_ * fibers_ < cfg_.ports) fibers_ <<= 1;
  OSMOSIS_REQUIRE(cfg_.ports % fibers_ == 0,
                  "port count must factor into fibers * wavelengths");
  wavelengths_ = cfg_.ports / fibers_;
  if (cfg_.validate_optical_path) {
    phy::BroadcastSelectConfig ocfg;
    ocfg.ports = cfg_.ports;
    ocfg.fibers = fibers_;
    ocfg.wavelengths = wavelengths_;
    ocfg.receivers_per_egress = std::max(1, cfg_.sched.receivers);
    optical_.emplace(ocfg);
  }

  // ---- component inventory (§VI.A health view) --------------------------
  const int receivers = std::max(1, cfg_.sched.receivers);
  for (int f = 0; f < fibers_; ++f) health_.declare(fiber_name(f));
  for (int out = 0; out < cfg_.ports; ++out)
    for (int rx = 0; rx < receivers; ++rx)
      health_.declare(module_name(out, rx));
  for (int in = 0; in < cfg_.ports; ++in) {
    health_.declare(adapter_name(in));
    health_.declare(link_name(in));
  }
  health_.declare(link_name(-1));
  health_.declare("controlpath");
  health_.declare("scheduler");

  // ---- static failure injection (applied before slot 0) -----------------
  rx_failed_.assign(static_cast<std::size_t>(cfg_.ports),
                    std::vector<std::uint8_t>(
                        static_cast<std::size_t>(receivers), 0));
  for (const auto& [out, rx] : cfg_.failed_receivers) {
    OSMOSIS_REQUIRE(out >= 0 && out < cfg_.ports && rx >= 0 &&
                        rx < receivers,
                    "failed receiver (" << out << "," << rx
                                        << ") out of range");
    rx_failed_[static_cast<std::size_t>(out)][static_cast<std::size_t>(rx)] =
        1;
    if (optical_) optical_->fail_module(out, rx);
    health_.report(module_name(out, rx), mgmt::Status::kFailed, 0,
                   "configured failed");
  }
  surviving_rx_.resize(static_cast<std::size_t>(cfg_.ports));
  for (int out = 0; out < cfg_.ports; ++out) {
    auto& survivors = surviving_rx_[static_cast<std::size_t>(out)];
    for (int rx = 0; rx < receivers; ++rx)
      if (!rx_failed_[static_cast<std::size_t>(out)]
                     [static_cast<std::size_t>(rx)])
        survivors.push_back(rx);
    sched_->set_output_capacity(out, static_cast<int>(survivors.size()));
  }

  dark_input_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  input_block_depth_.assign(static_cast<std::size_t>(cfg_.ports), 0);
  for (const int f : cfg_.failed_fibers) {
    OSMOSIS_REQUIRE(f >= 0 && f < fibers_, "failed fiber out of range");
    if (optical_) optical_->fail_fiber(f);
    health_.report(fiber_name(f), mgmt::Status::kFailed, 0,
                   "configured dark");
    for (int w = 0; w < wavelengths_; ++w) {
      const int in = f * wavelengths_ + w;
      dark_input_[static_cast<std::size_t>(in)] = 1;
      sched_->block_input(in);
    }
  }

  // ---- runtime fault plan ----------------------------------------------
  if (!cfg_.fault_plan.empty()) {
    for (const faults::FaultEvent& e : cfg_.fault_plan.events()) {
      switch (e.kind) {
        case faults::FaultKind::kModuleDeath:
          OSMOSIS_REQUIRE(e.a >= 0 && e.a < cfg_.ports && e.b >= 0 &&
                              e.b < receivers,
                          "fault plan: module (" << e.a << "," << e.b
                                                 << ") out of range");
          break;
        case faults::FaultKind::kFiberCut:
          OSMOSIS_REQUIRE(e.a >= 0 && e.a < fibers_,
                          "fault plan: fiber " << e.a << " out of range");
          break;
        case faults::FaultKind::kBurstErrors:
          OSMOSIS_REQUIRE(e.a >= -1 && e.a < cfg_.ports,
                          "fault plan: burst-error link " << e.a
                                                          << " out of range");
          break;
        case faults::FaultKind::kGrantCorruption:
          break;
        case faults::FaultKind::kAdapterStall:
          OSMOSIS_REQUIRE(e.a >= 0 && e.a < cfg_.ports,
                          "fault plan: adapter " << e.a << " out of range");
          break;
        case faults::FaultKind::kPlaneFailure:
          OSMOSIS_REQUIRE(false,
                          "plane faults target the multi-plane / fabric "
                          "simulators, not the single-stage switch");
          break;
      }
    }
    injector_.emplace(cfg_.fault_plan);
  }
}

void SwitchSim::block_input_ref(int in) {
  if (input_block_depth_[static_cast<std::size_t>(in)]++ == 0)
    sched_->block_input(in);
}

void SwitchSim::unblock_input_ref(int in) {
  auto& depth = input_block_depth_[static_cast<std::size_t>(in)];
  OSMOSIS_REQUIRE(depth > 0, "input mask underflow on input " << in);
  if (--depth == 0) sched_->unblock_input(in);
}

void SwitchSim::set_module_state(int out, int rx, bool failed,
                                 std::uint64_t t) {
  auto& flag =
      rx_failed_[static_cast<std::size_t>(out)][static_cast<std::size_t>(rx)];
  if (static_cast<bool>(flag) == failed) return;  // e.g. statically failed
  flag = failed ? 1 : 0;
  auto& survivors = surviving_rx_[static_cast<std::size_t>(out)];
  survivors.clear();
  const int receivers = std::max(1, cfg_.sched.receivers);
  for (int r = 0; r < receivers; ++r)
    if (!rx_failed_[static_cast<std::size_t>(out)]
                   [static_cast<std::size_t>(r)])
      survivors.push_back(r);
  // The scheduler immediately stops matching onto the lost capacity
  // (in-flight pipelined matchings shrink too); on revival the next
  // matchings pick the restored receiver back up.
  sched_->set_output_capacity(out, static_cast<int>(survivors.size()));
  if (optical_) {
    if (failed)
      optical_->fail_module(out, rx);
    else
      optical_->repair_module(out, rx);
  }
  health_.report(module_name(out, rx),
                 failed ? mgmt::Status::kFailed : mgmt::Status::kOk, t,
                 failed ? "injected" : "repaired");
}

void SwitchSim::apply_fault_transitions(std::uint64_t t) {
  for (const faults::FaultTransition& tr : injector_->tick(t)) {
    const faults::FaultEvent& e = tr.event;
    if (tr.begin) {
      ++faults_injected_;
      recovery_.on_fault(t, fault_key(e), backlog());
    } else {
      ++faults_repaired_;
      recovery_.on_repair(t, fault_key(e));
    }
    switch (e.kind) {
      case faults::FaultKind::kModuleDeath:
        set_module_state(e.a, e.b, tr.begin, t);
        break;
      case faults::FaultKind::kFiberCut: {
        if (optical_) {
          if (tr.begin)
            optical_->fail_fiber(e.a);
          else
            optical_->repair_fiber(e.a);
        }
        // Unlike a pre-run dark fiber (host offline), a mid-run cut
        // leaves the hosts generating: cells park in the VOQs and the
        // scheduler is masked until the splice.
        for (int w = 0; w < wavelengths_; ++w) {
          const int in = e.a * wavelengths_ + w;
          if (dark_input_[static_cast<std::size_t>(in)]) continue;
          if (tr.begin)
            block_input_ref(in);
          else
            unblock_input_ref(in);
        }
        health_.report(fiber_name(e.a),
                       tr.begin ? mgmt::Status::kFailed : mgmt::Status::kOk,
                       t, tr.begin ? "fiber cut" : "spliced");
        break;
      }
      case faults::FaultKind::kAdapterStall:
        if (tr.begin)
          block_input_ref(e.a);
        else
          unblock_input_ref(e.a);
        health_.report(adapter_name(e.a),
                       tr.begin ? mgmt::Status::kDegraded : mgmt::Status::kOk,
                       t, tr.begin ? "stalled" : "resumed");
        break;
      case faults::FaultKind::kBurstErrors:
        // The injector owns the per-cell error rolls; only the health
        // view changes here.
        health_.report(link_name(e.a),
                       tr.begin ? mgmt::Status::kDegraded : mgmt::Status::kOk,
                       t, tr.begin ? "burst errors" : "clean");
        break;
      case faults::FaultKind::kGrantCorruption:
        health_.report("controlpath",
                       tr.begin ? mgmt::Status::kDegraded : mgmt::Status::kOk,
                       t,
                       tr.begin ? "grant corruption" : "clean");
        break;
      case faults::FaultKind::kPlaneFailure:
        break;  // rejected at construction
    }
  }
}

std::uint64_t SwitchSim::backlog() const {
  std::uint64_t total = 0;
  for (const auto& v : voqs_)
    total += static_cast<std::uint64_t>(v.total_occupancy());
  for (const auto& q : egress_) total += q.size();
  return total;
}

void SwitchSim::step(std::uint64_t t, bool measuring, bool inject_traffic) {
  const int n = cfg_.ports;

  // 0. Scheduled faults begin / get repaired at the cycle boundary.
  if (injector_) {
    OSMOSIS_PROF_SCOPE("switch.faults");
    apply_fault_transitions(t);
  }

  // 1. Arrivals into the VOQs; requests enter the control pipe. Dark
  //    inputs (failed broadcast fiber) are offline hosts: no arrivals.
  if (inject_traffic) {
    OSMOSIS_PROF_SCOPE("switch.ingest");
    for (int in = 0; in < n; ++in) {
      sim::Arrival a;
      if (!traffic_->sample(in, a)) continue;
      if (dark_input_[static_cast<std::size_t>(in)]) continue;
      // Ordering is guaranteed per (input, output, class): the two classes
      // are independent streams (control has strict priority and may
      // legitimately overtake data of the same port pair).
      const std::size_t flow =
          (static_cast<std::size_t>(in) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(a.dst)) *
              2 +
          (a.cls == sim::TrafficClass::kControl ? 0 : 1);
      Cell cell;
      cell.src = in;
      cell.dst = a.dst;
      cell.seq = flow_seq_[flow]++;
      cell.arrival_slot = t;
      cell.cls = a.cls;
      cell.tag = a.tag;
      cell.trace = telem_.begin_cell(in, a.dst, static_cast<double>(t));
      telem_.mark(cell.trace, telemetry::Stage::kRequest,
                  static_cast<double>(t + static_cast<std::uint64_t>(
                                              cfg_.request_delay_slots)));
      ++enqueued_per_port_[static_cast<std::size_t>(in)];
      ++offered_;
      monitor_.offered(static_cast<std::uint64_t>(flow));
      voqs_[static_cast<std::size_t>(in)].push(cell);
      request_pipe_.push_back(PendingRequest{
          t + static_cast<std::uint64_t>(cfg_.request_delay_slots), in,
          a.dst});
    }
  }

  // 2. Control-path delivery of requests to the scheduler, including
  //    re-filed requests from missed-grant / ARQ timeouts.
  {
  OSMOSIS_PROF_SCOPE("switch.control");
  while (!retry_queue_.empty() && retry_queue_.begin()->first <= t) {
    const auto [in, out] = retry_queue_.begin()->second;
    retry_queue_.erase(retry_queue_.begin());
    sched_->request(in, out);
    if (cfg_.measure_grant_latency)
      request_times_[static_cast<std::size_t>(in) *
                         static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(out)]
          .push_back(t);
  }
  while (!request_pipe_.empty() && request_pipe_.front().deliver_slot <= t) {
    const PendingRequest req = request_pipe_.front();
    request_pipe_.pop_front();
    sched_->request(req.in, req.out);
    if (cfg_.measure_grant_latency)
      request_times_[static_cast<std::size_t>(req.in) *
                         static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(req.out)]
          .push_back(t);
  }
  }

  // 3. The central scheduler arbitrates this cell cycle.
  std::vector<Grant> grants;
  {
    OSMOSIS_PROF_SCOPE("switch.sched");
    grants = sched_->tick();
  }

  // 4. Crossbar transfer: granted cells move VOQ -> egress queue.
  {
  OSMOSIS_PROF_SCOPE("switch.xbar");
  if (optical_) optical_->release_all();
  for (const Grant& g : grants) {
    // A grant can be lost on the control path (corrupted grant message:
    // the adapter never transmits) or its cell corrupted on the data
    // path (FEC-uncorrectable at the receiver: the egress discards it).
    // Either way the cell stays at the head of its VOQ — per-flow FIFO
    // order is preserved by construction — and the adapter re-files the
    // request once the missed-grant / ARQ timeout fires.
    const bool lost_grant = injector_ && injector_->corrupt_grant();
    const bool lost_transfer =
        !lost_grant && injector_ && injector_->corrupt_transfer(g.input);
    if (cfg_.measure_grant_latency) {
      auto& times = request_times_[static_cast<std::size_t>(g.input) *
                                       static_cast<std::size_t>(n) +
                                   static_cast<std::size_t>(g.output)];
      OSMOSIS_REQUIRE(!times.empty(), "grant without outstanding request");
      const std::uint64_t requested = times.front();
      times.pop_front();
      if (measuring && !lost_grant)
        grant_latency_.add(static_cast<double>(t - requested) + 1.0);
    }
    // Logical receiver index -> surviving physical switching module.
    const auto& survivors = surviving_rx_[static_cast<std::size_t>(g.output)];
    // A mid-run fault can land while this grant was already in the
    // scheduler pipeline (FLPPR issues a match up to depth-1 cycles
    // after computing it). Such a grant reaches hardware that can no
    // longer honor it — the ingress fiber went dark, the adapter
    // stalled, or the egress lost the granted switching module — and
    // the transfer is simply lost in flight; the ARQ timeout re-files
    // the request like any other failed transfer.
    const bool stale_path =
        injector_ &&
        (input_block_depth_[static_cast<std::size_t>(g.input)] > 0 ||
         g.receiver >= static_cast<int>(survivors.size()));
    OSMOSIS_REQUIRE(stale_path ||
                        (g.receiver >= 0 &&
                         g.receiver < static_cast<int>(survivors.size())),
                    "grant to receiver " << g.receiver << " of output "
                                         << g.output << " exceeds its "
                                         << survivors.size()
                                         << " surviving module(s)");
    if (optical_ && !stale_path) {
      const int phys_rx = survivors[static_cast<std::size_t>(g.receiver)];
      optical_->connect(g.input, g.output, phys_rx);
      OSMOSIS_REQUIRE(optical_->selected_input(g.output, phys_rx) == g.input,
                      "optical path does not carry the granted input");
    }
    ++grants_issued_;
    if (lost_grant || lost_transfer || stale_path) {
      const std::uint64_t timeout = static_cast<std::uint64_t>(
          lost_grant ? cfg_.grant_timeout_slots : cfg_.arq_timeout_slots);
      retry_queue_.emplace(t + timeout, std::make_pair(g.input, g.output));
      if (lost_grant)
        ++grant_corruptions_;
      else
        ++retransmissions_;
      continue;
    }
    Cell cell = voqs_[static_cast<std::size_t>(g.input)].pop(g.output);
    OSMOSIS_REQUIRE(cell.dst == g.output, "VOQ returned a mis-routed cell");
    // The crossbar transfer occupies this cell cycle: granted at t,
    // landed on the egress queue at t + 1.
    telem_.mark(cell.trace, telemetry::Stage::kGrant, static_cast<double>(t));
    telem_.mark(cell.trace, telemetry::Stage::kTransmit,
                static_cast<double>(t) + 1.0);
    egress_[static_cast<std::size_t>(g.output)].push_back(cell);
  }
  for (const auto& q : egress_)
    max_egress_depth_ = std::max(max_egress_depth_, static_cast<int>(q.size()));
  }

  // 5. Egress lines drain.
  {
  OSMOSIS_PROF_SCOPE("switch.egress");
  for (int out = 0; out < n; ++out) {
    auto& q = egress_[static_cast<std::size_t>(out)];
    for (int k = 0; k < cfg_.egress_line_rate && !q.empty(); ++k) {
      const Cell cell = q.front();
      q.pop_front();
      // +1: the crossbar transfer itself occupies this cell cycle.
      const double delay = static_cast<double>(t - cell.arrival_slot) + 1.0;
      const int cls_bit = cell.cls == sim::TrafficClass::kControl ? 0 : 1;
      reorder_.deliver(cell.src, cell.dst * 2 + cls_bit, cell.seq);
      monitor_.delivered(
          (static_cast<std::uint64_t>(cell.src) *
               static_cast<std::uint64_t>(n) +
           static_cast<std::uint64_t>(cell.dst)) *
                  2 +
              static_cast<std::uint64_t>(cls_bit),
          cell.seq);
      if (cfg_.on_delivery) cfg_.on_delivery(cell, t);
      telem_.finish_cell(cell.trace, static_cast<double>(t) + 1.0, measuring);
      ++total_delivered_;
      if (measuring) {
        delay_hist_.add(delay);
        (cell.cls == sim::TrafficClass::kControl ? control_delay_
                                                 : data_delay_)
            .add(delay);
        meter_.add_delivery();
        ++delivered_per_port_[static_cast<std::size_t>(out)];
      }
    }
  }
  }

  // 6. Recovery bookkeeping: a repaired fault counts as recovered once
  //    the backlog returns to its pre-fault baseline.
  if (injector_) {
    OSMOSIS_PROF_SCOPE("switch.recovery");
    recovery_.observe(t, backlog());
  }

  // 7. Invariant verification at the slot boundary: cell conservation
  //    (retried cells stay VOQ-resident, so nothing is ever dropped) and
  //    the liveness watchdog. Retries maturing toward their timeout
  //    count as pending work, not as a stall.
  monitor_.end_slot({t, backlog(),
                     injector_ ? injector_->active_faults() : 0,
                     retry_queue_.size()});
}

void SwitchSim::sample_series(std::uint64_t t) {
  prof::TimeSeriesSampler& s = telem_.series();
  if (!s.due(t)) return;
  OSMOSIS_PROF_SCOPE("switch.telemetry");
  std::uint64_t voq_total = 0;
  std::uint64_t voq_max = 0;
  for (const auto& v : voqs_) {
    const auto occ = static_cast<std::uint64_t>(v.total_occupancy());
    voq_total += occ;
    voq_max = std::max(voq_max, occ);
  }
  std::uint64_t egress_total = 0;
  for (const auto& q : egress_) egress_total += q.size();
  // Rates over the window since the previous sample; the first sample
  // of a run has no window yet and records 0.
  const std::uint64_t dslots = t - last_sample_slot_;
  const double ddeliv =
      static_cast<double>(total_delivered_ - last_sample_delivered_);
  const double dgrants =
      static_cast<double>(grants_issued_ - last_sample_grants_);
  const double thr =
      dslots ? ddeliv / (static_cast<double>(dslots) *
                         static_cast<double>(cfg_.ports))
             : 0.0;
  const double link_util =
      dslots ? dgrants / (static_cast<double>(dslots) *
                          static_cast<double>(cfg_.ports))
             : 0.0;
  s.record(t, {static_cast<double>(voq_total + egress_total),
               static_cast<double>(voq_total), static_cast<double>(voq_max),
               static_cast<double>(egress_total),
               static_cast<double>(retry_queue_.size()), thr, link_util,
               static_cast<double>(dslots ? dgrants /
                                                static_cast<double>(dslots)
                                          : 0.0)});
  last_sample_slot_ = t;
  last_sample_delivered_ = total_delivered_;
  last_sample_grants_ = grants_issued_;
}

// Windowed delivery accounting: the worst window is the depth of the
// throughput dip a mid-run fault carves out.
constexpr std::uint64_t kWindowSlots = 512;

bool SwitchSim::advance_slot() {
  const std::uint64_t measure_end = cfg_.warmup_slots + cfg_.measure_slots;
  if (now_ < cfg_.warmup_slots) {
    step(now_, false, true);
    sample_series(now_);
    ++now_;
    return true;
  }
  if (now_ < measure_end) {
    step(now_, true, true);
    sample_series(now_);
    meter_.advance_slots(1, static_cast<std::uint64_t>(cfg_.ports));
    const std::uint64_t elapsed = now_ + 1 - cfg_.warmup_slots;
    if (elapsed % kWindowSlots == 0) {
      const std::uint64_t in_window = delay_hist_.count() - window_mark_;
      window_mark_ = delay_hist_.count();
      const double thr =
          static_cast<double>(in_window) /
          (static_cast<double>(kWindowSlots) * static_cast<double>(cfg_.ports));
      min_window_thr_ = min_window_thr_ < 0.0
                            ? thr
                            : std::min(min_window_thr_, thr);
    }
    ++now_;
    return true;
  }
  // Post-run drain: stop arrivals and let the recovered switch empty
  // its queues so the invariant checker can confirm exactly-once
  // delivery of everything offered.
  if (cfg_.drain_max_slots == 0) return false;
  if (now_ >= measure_end + cfg_.drain_max_slots) return false;
  if (backlog() == 0 && retry_queue_.empty() &&
      !(injector_ && injector_->pending() > 0))
    return false;
  step(now_, false, false);
  sample_series(now_);
  ++drained_slots_;
  ++now_;
  return true;
}

SwitchSimResult SwitchSim::run() {
  while (advance_slot()) {
  }
  return finalize();
}

SwitchSimResult SwitchSim::finalize() {
  SwitchSimResult r;
  r.scheduler = sched_->name();
  r.offered_load = traffic_->offered_load();
  r.throughput = meter_.utilization();
  r.delivered = delay_hist_.count();
  r.mean_delay = delay_hist_.mean();
  r.p99_delay = delay_hist_.p99();
  r.max_delay = delay_hist_.max();
  r.mean_control_delay = control_delay_.mean();
  r.mean_data_delay = data_delay_.mean();
  r.mean_grant_latency = grant_latency_.mean();
  r.p99_grant_latency = grant_latency_.p99();
  for (const auto& v : voqs_) r.max_voq_depth = std::max(r.max_voq_depth,
                                                         v.max_depth_seen());
  r.max_egress_depth = max_egress_depth_;
  r.out_of_order = reorder_.out_of_order();
  if (optical_) r.crossbar_reconfigs = optical_->reconfigurations();
  r.offered = offered_;
  r.grant_corruptions = grant_corruptions_;
  r.retransmissions = retransmissions_;
  r.faults_injected = faults_injected_;
  r.faults_repaired = faults_repaired_;
  r.faults_recovered = recovery_.recovered();
  r.mean_recovery_slots = recovery_.mean_recovery_slots();
  r.max_recovery_slots = recovery_.max_recovery_slots();
  r.min_window_throughput = min_window_thr_ < 0.0 ? r.throughput
                                                  : min_window_thr_;
  r.drained_slots = drained_slots_;
  monitor_.finish(now_, backlog());
  const auto inv = monitor_.exactly_once().report();
  r.exactly_once_in_order = inv.exactly_once_in_order();
  r.duplicates = inv.duplicates;
  r.missing = inv.missing;
  r.invariant_violations = monitor_.violations();
  r.first_violation = monitor_.first_violation();

  if (telem_.enabled()) {
    auto& ctr = telem_.counters();
    for (int p = 0; p < cfg_.ports; ++p) {
      const std::string port = std::to_string(p);
      ctr.add("ingress." + port + ".enqueued",
              static_cast<double>(enqueued_per_port_[static_cast<std::size_t>(p)]));
      ctr.add("egress." + port + ".delivered",
              static_cast<double>(delivered_per_port_[static_cast<std::size_t>(p)]));
      ctr.set_gauge("ingress." + port + ".max_voq_depth",
                    voqs_[static_cast<std::size_t>(p)].max_depth_seen());
    }
    ctr.add("sched.grants", static_cast<double>(grants_issued_));
    ctr.add("switch.delivered", static_cast<double>(r.delivered));
    ctr.add("switch.offered", static_cast<double>(r.offered));
    ctr.add("switch.out_of_order", static_cast<double>(r.out_of_order));
    ctr.set_gauge("egress.max_depth", max_egress_depth_);
    if (optical_)
      ctr.add("crossbar.reconfigs", static_cast<double>(r.crossbar_reconfigs));
    if (injector_) {
      ctr.add("faults.injected", static_cast<double>(r.faults_injected));
      ctr.add("faults.repaired", static_cast<double>(r.faults_repaired));
      ctr.add("faults.recovered", static_cast<double>(r.faults_recovered));
      ctr.add("faults.grant_corruptions",
              static_cast<double>(r.grant_corruptions));
      ctr.add("faults.retransmissions",
              static_cast<double>(r.retransmissions));
      ctr.set_gauge("faults.mean_recovery_slots", r.mean_recovery_slots);
      ctr.set_gauge("faults.drained_slots",
                    static_cast<double>(r.drained_slots));
      ctr.set_gauge("faults.exactly_once_in_order",
                    r.exactly_once_in_order ? 1.0 : 0.0);
    }
  }
  return r;
}

template <class Ar>
void SwitchSim::io_core(Ar& a) {
  ckpt::field(a, now_);
  ckpt::field(a, window_mark_);
  ckpt::field(a, min_window_thr_);
  ckpt::field(a, flow_seq_);
  ckpt::field(a, request_pipe_);
  ckpt::field(a, request_times_);
  ckpt::field(a, egress_);
  ckpt::field(a, surviving_rx_);
  ckpt::field(a, dark_input_);
  ckpt::field(a, rx_failed_);
  ckpt::field(a, input_block_depth_);
  ckpt::field(a, retry_queue_);
  ckpt::field(a, offered_);
  ckpt::field(a, grant_corruptions_);
  ckpt::field(a, retransmissions_);
  ckpt::field(a, faults_injected_);
  ckpt::field(a, faults_repaired_);
  ckpt::field(a, drained_slots_);
  ckpt::field(a, max_egress_depth_);
  ckpt::field(a, enqueued_per_port_);
  ckpt::field(a, delivered_per_port_);
  ckpt::field(a, grants_issued_);
  ckpt::field(a, total_delivered_);
  ckpt::field(a, last_sample_slot_);
  ckpt::field(a, last_sample_delivered_);
  ckpt::field(a, last_sample_grants_);
  if constexpr (Ar::kLoading) {
    if (egress_.size() != static_cast<std::size_t>(cfg_.ports) ||
        dark_input_.size() != static_cast<std::size_t>(cfg_.ports))
      throw ckpt::Error("switch core state sized for a different port count");
  }
}

template <class Ar>
void SwitchSim::io_stats(Ar& a) {
  ckpt::field(a, delay_hist_);
  ckpt::field(a, control_delay_);
  ckpt::field(a, data_delay_);
  ckpt::field(a, grant_latency_);
  ckpt::field(a, meter_);
  ckpt::field(a, reorder_);
  ckpt::field(a, monitor_);
  ckpt::field(a, recovery_);
  ckpt::field(a, health_);
}

void SwitchSim::save_state(ckpt::Writer& w) const {
  auto* self = const_cast<SwitchSim*>(this);
  ckpt::write_chunk(w, "switch.core",
                    [&](ckpt::Sink& s) { self->io_core(s); });
  ckpt::write_chunk(w, "switch.traffic",
                    [&](ckpt::Sink& s) { traffic_->save_state(s); });
  ckpt::write_chunk(w, "switch.sched",
                    [&](ckpt::Sink& s) { sched_->save_state(s); });
  ckpt::write_chunk(w, "switch.voq", [&](ckpt::Sink& s) {
    std::uint64_t n = voqs_.size();
    ckpt::field(s, n);
    for (auto& v : self->voqs_) ckpt::field(s, v);
  });
  ckpt::write_chunk(w, "switch.stats",
                    [&](ckpt::Sink& s) { self->io_stats(s); });
  if (injector_)
    ckpt::write_chunk(w, "switch.faults", [&](ckpt::Sink& s) {
      ckpt::field(s, *self->injector_);
    });
  if (optical_)
    ckpt::write_chunk(w, "switch.optical", [&](ckpt::Sink& s) {
      ckpt::field(s, *self->optical_);
    });
  ckpt::write_chunk(w, "switch.telemetry",
                    [&](ckpt::Sink& s) { ckpt::field(s, self->telem_); });
}

void SwitchSim::load_state(const ckpt::Reader& r) {
  ckpt::read_chunk(r, "switch.core", [&](ckpt::Source& s) { io_core(s); });
  ckpt::read_chunk(r, "switch.traffic",
                   [&](ckpt::Source& s) { traffic_->load_state(s); });
  ckpt::read_chunk(r, "switch.sched",
                   [&](ckpt::Source& s) { sched_->load_state(s); });
  ckpt::read_chunk(r, "switch.voq", [&](ckpt::Source& s) {
    std::uint64_t n = 0;
    ckpt::field(s, n);
    if (n != voqs_.size())
      throw ckpt::Error("VOQ bank count mismatch in checkpoint");
    for (auto& v : voqs_) ckpt::field(s, v);
  });
  ckpt::read_chunk(r, "switch.stats", [&](ckpt::Source& s) { io_stats(s); });
  if (injector_)
    ckpt::read_chunk(r, "switch.faults",
                     [&](ckpt::Source& s) { ckpt::field(s, *injector_); });
  if (optical_)
    ckpt::read_chunk(r, "switch.optical",
                     [&](ckpt::Source& s) { ckpt::field(s, *optical_); });
  ckpt::read_chunk(r, "switch.telemetry",
                   [&](ckpt::Source& s) { ckpt::field(s, telem_); });
}

telemetry::RunReport SwitchSim::report() const {
  telemetry::RunReport r = telem_.make_report("SwitchSim", "cycles");
  r.config["ports"] = cfg_.ports;
  r.config["receivers"] = cfg_.sched.receivers;
  r.config["egress_line_rate"] = cfg_.egress_line_rate;
  r.config["request_delay_slots"] = cfg_.request_delay_slots;
  r.config["warmup_slots"] = static_cast<double>(cfg_.warmup_slots);
  r.config["measure_slots"] = static_cast<double>(cfg_.measure_slots);
  r.config["offered_load"] = traffic_->offered_load();
  r.config["telemetry.sample_every"] = cfg_.telemetry.sample_every;
  if (!cfg_.fault_plan.empty()) {
    r.config["fault_events"] = static_cast<double>(cfg_.fault_plan.size());
    r.config["drain_max_slots"] = static_cast<double>(cfg_.drain_max_slots);
    r.config["grant_timeout_slots"] = cfg_.grant_timeout_slots;
    r.config["arq_timeout_slots"] = cfg_.arq_timeout_slots;
  }
  r.info["scheduler"] = sched_->name();
  r.health = health_.event_log();
  r.histograms.emplace("delay",
                       telemetry::HistogramSummary::of(delay_hist_));
  r.histograms.emplace("grant_latency",
                       telemetry::HistogramSummary::of(grant_latency_));
  r.histograms.emplace("control_delay",
                       telemetry::HistogramSummary::of(control_delay_));
  r.histograms.emplace("data_delay",
                       telemetry::HistogramSummary::of(data_delay_));
  monitor_.to_report(r);
  return r;
}

SwitchSimResult run_uniform(const SwitchSimConfig& cfg, double load,
                            std::uint64_t seed) {
  SwitchSim sim(cfg, sim::make_uniform(cfg.ports, load, seed));
  return sim.run();
}

}  // namespace osmosis::sw
