#pragma once
// The fixed-size cell (the demonstrator's 256-byte packet, §V) and the
// grant triple issued by the central scheduler.

#include <cstdint>

#include "src/ckpt/archive.hpp"
#include "src/sim/traffic.hpp"

namespace osmosis::sw {

/// One fixed-size cell traversing the switch.
struct Cell {
  int src = -1;
  int dst = -1;
  std::uint64_t seq = 0;           // per-(src,dst) sequence, for ordering
  std::uint64_t arrival_slot = 0;  // slot it entered the ingress VOQ
  sim::TrafficClass cls = sim::TrafficClass::kData;
  std::uint64_t tag = 0;           // opaque user tag (e.g. message id for
                                   // the host segmentation/reassembly layer)
  std::int32_t trace = -1;         // telemetry::CellTrace handle (-1 =
                                   // untraced; see src/telemetry/)

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, src);
    ckpt::field(a, dst);
    ckpt::field(a, seq);
    ckpt::field(a, arrival_slot);
    ckpt::field(a, cls);
    ckpt::field(a, tag);
    ckpt::field(a, trace);
  }
};

/// One crossbar connection for one cell cycle: input -> (output, receiver).
/// `receiver` selects which of the egress adapter's receivers (the
/// dual-receiver architecture gives each output two) carries the cell.
struct Grant {
  int input = -1;
  int output = -1;
  int receiver = 0;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, input);
    ckpt::field(a, output);
    ckpt::field(a, receiver);
  }
};

}  // namespace osmosis::sw
