#include "src/sw/voq.hpp"

#include <algorithm>

#include "src/util/log.hpp"

namespace osmosis::sw {

VoqBank::VoqBank(int input, int outputs)
    : input_(input),
      outputs_(outputs),
      queues_(static_cast<std::size_t>(outputs)) {
  OSMOSIS_REQUIRE(outputs_ >= 1, "need at least one output");
}

void VoqBank::push(const Cell& cell) {
  OSMOSIS_REQUIRE(cell.dst >= 0 && cell.dst < outputs_,
                  "cell destination out of range: " << cell.dst);
  ClassQueues& q = queues_[static_cast<std::size_t>(cell.dst)];
  if (cell.cls == sim::TrafficClass::kControl)
    q.control.push_back(cell);
  else
    q.data.push_back(cell);
  ++total_;
  max_depth_ = std::max(max_depth_, q.size());
}

Cell VoqBank::pop(int dst) {
  OSMOSIS_REQUIRE(dst >= 0 && dst < outputs_, "dst out of range: " << dst);
  ClassQueues& q = queues_[static_cast<std::size_t>(dst)];
  OSMOSIS_REQUIRE(q.size() > 0, "pop on empty VOQ (" << input_ << " -> "
                                                     << dst << ")");
  Cell cell;
  if (!q.control.empty()) {
    cell = q.control.front();
    q.control.pop_front();
  } else {
    cell = q.data.front();
    q.data.pop_front();
  }
  --total_;
  return cell;
}

int VoqBank::occupancy(int dst) const {
  OSMOSIS_REQUIRE(dst >= 0 && dst < outputs_, "dst out of range: " << dst);
  return queues_[static_cast<std::size_t>(dst)].size();
}

}  // namespace osmosis::sw
