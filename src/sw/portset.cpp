#include "src/sw/portset.hpp"

#include <bit>

#include "src/util/log.hpp"

namespace osmosis::sw {

PortSet::PortSet(int ports)
    : ports_(ports),
      words_(static_cast<std::size_t>((ports + 63) / 64), 0) {
  OSMOSIS_REQUIRE(ports >= 0, "negative port count");
}

void PortSet::set(int p) {
  OSMOSIS_REQUIRE(p >= 0 && p < ports_, "port out of range: " << p);
  words_[static_cast<std::size_t>(p >> 6)] |= std::uint64_t{1} << (p & 63);
}

void PortSet::clear(int p) {
  OSMOSIS_REQUIRE(p >= 0 && p < ports_, "port out of range: " << p);
  words_[static_cast<std::size_t>(p >> 6)] &= ~(std::uint64_t{1} << (p & 63));
}

bool PortSet::test(int p) const {
  OSMOSIS_REQUIRE(p >= 0 && p < ports_, "port out of range: " << p);
  return (words_[static_cast<std::size_t>(p >> 6)] >> (p & 63)) & 1u;
}

void PortSet::clear_all() {
  for (auto& w : words_) w = 0;
}

void PortSet::set_all() {
  if (ports_ == 0) return;
  for (auto& w : words_) w = ~std::uint64_t{0};
  // Mask the tail beyond `ports_`.
  const int tail = ports_ & 63;
  if (tail != 0)
    words_.back() &= (std::uint64_t{1} << tail) - 1;
}

bool PortSet::any() const {
  for (auto w : words_)
    if (w != 0) return true;
  return false;
}

int PortSet::count() const {
  int n = 0;
  for (auto w : words_) n += std::popcount(w);
  return n;
}

int PortSet::next_circular(int from) const {
  if (ports_ == 0) return -1;
  OSMOSIS_REQUIRE(from >= 0 && from < ports_, "start out of range: " << from);
  // Linear scan over [from, ports_). Tail bits past `ports_` are never
  // set (set()/set_all() maintain that), so any hit is valid.
  int word = from >> 6;
  std::uint64_t w = words_[static_cast<std::size_t>(word)] &
                    (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (w != 0) return word * 64 + std::countr_zero(w);
    if (++word == word_count()) break;
    w = words_[static_cast<std::size_t>(word)];
  }
  // Wrap: scan [0, from).
  const int from_word = from >> 6;
  for (word = 0; word <= from_word; ++word) {
    w = words_[static_cast<std::size_t>(word)];
    if (word == from_word)
      w &= (from & 63) ? ((std::uint64_t{1} << (from & 63)) - 1) : 0;
    if (w != 0) return word * 64 + std::countr_zero(w);
  }
  return -1;
}

PortSet& PortSet::operator&=(const PortSet& other) {
  OSMOSIS_REQUIRE(ports_ == other.ports_, "size mismatch in PortSet AND");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

}  // namespace osmosis::sw
