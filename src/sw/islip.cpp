#include "src/sw/islip.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::sw {

// ---- DemandState (defined here with the engine it serves) ------------------

DemandState::DemandState(int ports)
    : ports_(ports),
      residual_(static_cast<std::size_t>(ports) * static_cast<std::size_t>(ports),
                0),
      avail_(static_cast<std::size_t>(ports), PortSet(ports)),
      empty_(ports),
      blocked_(static_cast<std::size_t>(ports), 0),
      input_blocked_(static_cast<std::size_t>(ports), 0) {
  OSMOSIS_REQUIRE(ports_ >= 1, "need at least one port");
}

void DemandState::add_request(int in, int out) {
  OSMOSIS_REQUIRE(in >= 0 && in < ports_ && out >= 0 && out < ports_,
                  "request (" << in << "," << out << ") out of range");
  auto& r = residual_[static_cast<std::size_t>(index(in, out))];
  if (r == 0 && !input_blocked_[static_cast<std::size_t>(in)])
    avail_[static_cast<std::size_t>(out)].set(in);
  ++r;
  ++total_;
}

void DemandState::reserve(int in, int out) {
  auto& r = residual_[static_cast<std::size_t>(index(in, out))];
  OSMOSIS_REQUIRE(r > 0, "reserve without residual demand (" << in << ","
                                                             << out << ")");
  --r;
  --total_;
  if (r == 0) avail_[static_cast<std::size_t>(out)].clear(in);
}

void DemandState::cancel_request(int in, int out) {
  OSMOSIS_REQUIRE(in >= 0 && in < ports_ && out >= 0 && out < ports_,
                  "cancel (" << in << "," << out << ") out of range");
  auto& r = residual_[static_cast<std::size_t>(index(in, out))];
  OSMOSIS_REQUIRE(r > 0, "cancel without residual demand (" << in << ","
                                                            << out << ")");
  --r;
  --total_;
  if (r == 0) avail_[static_cast<std::size_t>(out)].clear(in);
}

int DemandState::residual(int in, int out) const {
  OSMOSIS_REQUIRE(in >= 0 && in < ports_ && out >= 0 && out < ports_,
                  "query out of range");
  return static_cast<int>(residual_[static_cast<std::size_t>(index(in, out))]);
}

const PortSet& DemandState::candidates(int out) const {
  OSMOSIS_REQUIRE(out >= 0 && out < ports_, "output out of range");
  if (blocked_[static_cast<std::size_t>(out)]) return empty_;
  return avail_[static_cast<std::size_t>(out)];
}

void DemandState::block_output(int out) {
  OSMOSIS_REQUIRE(out >= 0 && out < ports_, "output out of range");
  blocked_[static_cast<std::size_t>(out)] = 1;
}

void DemandState::unblock_output(int out) {
  OSMOSIS_REQUIRE(out >= 0 && out < ports_, "output out of range");
  blocked_[static_cast<std::size_t>(out)] = 0;
}

bool DemandState::blocked(int out) const {
  OSMOSIS_REQUIRE(out >= 0 && out < ports_, "output out of range");
  return blocked_[static_cast<std::size_t>(out)] != 0;
}

void DemandState::block_input(int in) {
  OSMOSIS_REQUIRE(in >= 0 && in < ports_, "input out of range");
  if (input_blocked_[static_cast<std::size_t>(in)]) return;
  input_blocked_[static_cast<std::size_t>(in)] = 1;
  for (int out = 0; out < ports_; ++out)
    avail_[static_cast<std::size_t>(out)].clear(in);
}

void DemandState::unblock_input(int in) {
  OSMOSIS_REQUIRE(in >= 0 && in < ports_, "input out of range");
  if (!input_blocked_[static_cast<std::size_t>(in)]) return;
  input_blocked_[static_cast<std::size_t>(in)] = 0;
  for (int out = 0; out < ports_; ++out)
    if (residual_[static_cast<std::size_t>(index(in, out))] > 0)
      avail_[static_cast<std::size_t>(out)].set(in);
}

bool DemandState::input_blocked(int in) const {
  OSMOSIS_REQUIRE(in >= 0 && in < ports_, "input out of range");
  return input_blocked_[static_cast<std::size_t>(in)] != 0;
}

// ---- IslipIteration ----------------------------------------------------------

void IslipIteration::Matching::reset(int ports, int receivers) {
  if (input_free.size() != ports) input_free = PortSet(ports);
  input_free.set_all();
  capacity.assign(static_cast<std::size_t>(ports), receivers);
  matches.clear();
  iterations_run = 0;
}

void IslipIteration::Matching::reset(int ports,
                                     const std::vector<int>& capacities) {
  OSMOSIS_REQUIRE(static_cast<int>(capacities.size()) == ports,
                  "capacity vector size mismatch");
  if (input_free.size() != ports) input_free = PortSet(ports);
  input_free.set_all();
  capacity = capacities;
  matches.clear();
  iterations_run = 0;
}

IslipIteration::IslipIteration(int ports)
    : ports_(ports),
      grant_ptr_(static_cast<std::size_t>(ports), 0),
      accept_ptr_(static_cast<std::size_t>(ports), 0),
      grants_to_input_(static_cast<std::size_t>(ports)) {
  OSMOSIS_REQUIRE(ports_ >= 1, "need at least one port");
}

void IslipIteration::run(DemandState& primary, DemandState* shared,
                         Matching& m, bool update_pointers) {
  granted_inputs_.clear();

  // Grant phase: each output with remaining receiver capacity offers up
  // to `capacity` grants, scanning inputs round-robin from its pointer.
  for (int out = 0; out < ports_; ++out) {
    int cap = m.capacity[static_cast<std::size_t>(out)];
    if (cap <= 0) continue;
    PortSet cands = primary.candidates(out);
    if (shared != nullptr) cands &= shared->candidates(out);
    cands &= m.input_free;
    int from = grant_ptr_[static_cast<std::size_t>(out)];
    while (cap > 0) {
      const int in = cands.next_circular(from);
      if (in < 0) break;
      auto& list = grants_to_input_[static_cast<std::size_t>(in)];
      if (list.empty()) granted_inputs_.push_back(in);
      list.push_back(out);
      cands.clear(in);  // one grant per (output, input) pair per round
      --cap;
      from = (in + 1) % ports_;
    }
  }

  // Accept phase: each granted input accepts the offer closest (in
  // round-robin order) to its accept pointer.
  for (const int in : granted_inputs_) {
    auto& offers = grants_to_input_[static_cast<std::size_t>(in)];
    int best = -1;
    int best_dist = ports_ + 1;
    const int ap = accept_ptr_[static_cast<std::size_t>(in)];
    for (const int out : offers) {
      const int dist = (out - ap + ports_) % ports_;
      if (dist < best_dist) {
        best_dist = dist;
        best = out;
      }
    }
    offers.clear();
    if (best < 0) continue;

    // Commit the match.
    m.input_free.clear(in);
    --m.capacity[static_cast<std::size_t>(best)];
    primary.reserve(in, best);
    if (shared != nullptr) shared->reserve(in, best);
    m.matches.push_back(Grant{in, best, 0});

    if (update_pointers) {
      grant_ptr_[static_cast<std::size_t>(best)] = (in + 1) % ports_;
      accept_ptr_[static_cast<std::size_t>(in)] = (best + 1) % ports_;
    }
  }
  ++m.iterations_run;
}

// ---- Scheduler base -----------------------------------------------------------

Scheduler::Scheduler(int ports, int receivers)
    : demand_(ports),
      receivers_(receivers),
      output_capacity_(static_cast<std::size_t>(ports), receivers) {
  OSMOSIS_REQUIRE(receivers_ >= 1, "need at least one receiver per output");
}

void Scheduler::set_output_capacity(int out, int capacity) {
  OSMOSIS_REQUIRE(out >= 0 && out < ports(), "output out of range");
  OSMOSIS_REQUIRE(capacity >= 0 && capacity <= receivers_,
                  "capacity must be in [0, receivers]");
  output_capacity_[static_cast<std::size_t>(out)] = capacity;
  // A zero-capacity output is equivalent to a blocked one; keep the
  // demand masks consistent so pipelined matchings stop considering it.
  if (capacity == 0)
    demand_.block_output(out);
  else if (demand_.blocked(out))
    demand_.unblock_output(out);
  on_output_capacity_changed(out, capacity);
}

int Scheduler::output_capacity(int out) const {
  OSMOSIS_REQUIRE(out >= 0 && out < ports(), "output out of range");
  return output_capacity_[static_cast<std::size_t>(out)];
}

void Scheduler::number_receivers(std::vector<Grant>& grants) const {
  std::vector<int> used(static_cast<std::size_t>(ports()), 0);
  for (auto& g : grants) {
    g.receiver = used[static_cast<std::size_t>(g.output)]++;
    OSMOSIS_REQUIRE(g.receiver < receivers_,
                    "output " << g.output << " over-matched: receiver "
                              << g.receiver << " of " << receivers_);
  }
}

void Scheduler::save_state(ckpt::Sink& s) const {
  auto* self = const_cast<Scheduler*>(this);
  ckpt::field(s, self->demand_);
  ckpt::field(s, self->output_capacity_);
}

void Scheduler::load_state(ckpt::Source& s) {
  ckpt::field(s, demand_);
  ckpt::field(s, output_capacity_);
}

// ---- IslipScheduler --------------------------------------------------------------

IslipScheduler::IslipScheduler(int ports, int receivers, int iterations)
    : Scheduler(ports, receivers),
      iterations_(iterations > 0 ? iterations : util::ceil_log2(
                                                    static_cast<std::uint64_t>(
                                                        ports))),
      engine_(ports) {
  if (iterations_ < 1) iterations_ = 1;  // 1-port switch edge case
}

std::string IslipScheduler::name() const {
  std::ostringstream oss;
  oss << "iSLIP(" << iterations_ << ")";
  return oss.str();
}

std::vector<Grant> IslipScheduler::tick() {
  matching_.reset(ports(), output_capacity_);
  for (int it = 0; it < iterations_; ++it)
    engine_.run(demand_, nullptr, matching_, /*update_pointers=*/it == 0);
  std::vector<Grant> grants = std::move(matching_.matches);
  matching_.matches.clear();
  number_receivers(grants);
  return grants;
}

}  // namespace osmosis::sw
