#pragma once
// Event-driven single-stage switch simulation — the OMNeT++-style
// environment the authors used for their §V delay/throughput analyses,
// rebuilt on this library's discrete-event kernel with real time in
// nanoseconds.
//
// Two purposes:
//  1. Cross-validation: with uniform (zero) control distances it must
//     reproduce the slot-synchronous SwitchSim's delay/throughput.
//  2. Heterogeneous geometry: each ingress adapter can sit at its own
//     fiber distance from the central scheduler (the demonstrator's
//     multi-meter scheduler-to-SOA control cables, §VI.B). Requests and
//     grants then fly with per-adapter latencies; cells are re-aligned
//     to the cell-cycle grid on launch (the [20] synchronization
//     function), and the simulator counts how often ragged grant
//     arrivals would overbook an output's receivers in one cycle — the
//     quantitative reason the hardware equalizes control paths.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/chaos/monitor.hpp"
#include "src/ckpt/ckpt.hpp"
#include "src/faults/fault_injector.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/faults/invariant.hpp"
#include "src/mgmt/health.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/scheduler.hpp"
#include "src/sw/voq.hpp"
#include "src/telemetry/telemetry.hpp"

namespace osmosis::sw {

struct EventSwitchConfig {
  int ports = 16;
  SchedulerConfig sched;
  double cell_ns = 51.2;
  // Per-adapter one-way control-fiber delay to the scheduler (requests
  // AND grants travel it; the data fiber to the crossbar is assumed to
  // run alongside). Missing entries use `default_ctrl_ns`.
  std::vector<double> ctrl_fiber_ns;
  double default_ctrl_ns = 0.0;
  double warmup_ns = 100'000.0;
  double measure_ns = 1'000'000.0;
  // Cell-lifecycle tracing / RunReport export (timestamps in ns). Off
  // by default. The stage-histogram linear limit is widened on
  // construction to suit ns-scale values.
  telemetry::TelemetryConfig telemetry;
  // Mid-run fault schedule (src/faults/). Fault slots are cell-cycle
  // indices, applied at the cycle boundary. Empty = untouched fault-free
  // path (bit-identical results).
  faults::FaultPlan fault_plan;
  int grant_timeout_cycles = 8;  // missed-grant re-request delay
  int arq_timeout_cycles = 8;    // FEC-uncorrectable re-request delay
  // Extra cycles (arrivals off) after the measurement window so the
  // invariant checker can confirm exactly-once delivery. 0 = no drain.
  std::uint64_t drain_max_cycles = 0;
  // Runtime invariant verification (chaos soak layer); pure accounting.
  chaos::MonitorConfig monitor;
};

struct EventSwitchResult {
  double offered_load = 0.0;
  double throughput = 0.0;          // cells/cycle/port
  std::uint64_t delivered = 0;
  double mean_delay_ns = 0.0;       // VOQ arrival -> egress departure
  double p99_delay_ns = 0.0;
  double mean_delay_cycles = 0.0;
  double mean_grant_latency_ns = 0.0;  // request issue -> grant at adapter
  std::uint64_t receiver_conflicts = 0;  // cycles an output was overbooked
  std::uint64_t out_of_order = 0;
  // Degraded-operation accounting (fault injection / recovery).
  std::uint64_t offered = 0;
  std::uint64_t grant_corruptions = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_repaired = 0;
  std::uint64_t faults_recovered = 0;
  double mean_recovery_cycles = 0.0;
  double max_recovery_cycles = 0.0;
  std::uint64_t drained_cycles = 0;
  bool exactly_once_in_order = false;
  std::uint64_t duplicates = 0;
  std::uint64_t missing = 0;
  std::uint64_t invariant_violations = 0;
  std::string first_violation;  // "" when clean
};

class EventSwitchSim {
 public:
  EventSwitchSim(EventSwitchConfig cfg,
                 std::unique_ptr<sim::TrafficGen> traffic);

  EventSwitchResult run();

  /// Incremental stepping for checkpoint/restore: performs one unit of
  /// event-loop work (one fired event in the main window, one drain
  /// cycle, or one flushed event) and returns false when the run is
  /// complete. run() == { while (advance()) {} finalize(); }.
  bool advance();

  /// Assembles the result and writes the end-of-run telemetry counters.
  /// Call exactly once, after advance() returns false.
  EventSwitchResult finalize();

  /// Number of advance() calls so far — the replay coordinate a
  /// restored run must be driven to for lockstep comparison.
  std::uint64_t advance_count() const { return advance_count_; }

  /// Snapshots every mutable field — including the pending typed event
  /// heap, so in-flight requests/grants/cells survive — into "event.*"
  /// chunks. The loader must be an EventSwitchSim built from the
  /// identical config; structural mismatches throw ckpt::Error.
  void save_state(ckpt::Writer& w) const;
  void load_state(const ckpt::Reader& r);

  telemetry::Telemetry& telemetry() { return telem_; }
  const telemetry::Telemetry& telemetry() const { return telem_; }

  /// Component health view with the injector-driven transitions.
  const mgmt::HealthRegistry& health() const { return health_; }

  /// Runtime invariant verdict (chaos soak layer).
  const chaos::InvariantMonitor& monitor() const { return monitor_; }

  /// Structured run export; stage histograms are in nanoseconds.
  telemetry::RunReport report() const;

  /// Raw measurement histograms (ns), for exact cross-run aggregation
  /// via sim::Histogram::merge.
  const sim::Histogram& delay_histogram() const { return delay_ns_; }
  const sim::Histogram& grant_latency_histogram() const { return grant_ns_; }

 private:
  // The event loop is a typed min-heap rather than closures so pending
  // events serialize: each Ev is plain data interpreted by fire_next().
  // Ordering matches sim::EventQueue exactly — (time_ns, seq) with FIFO
  // tie-break among equal timestamps.
  enum class EvKind : std::uint8_t {
    kCycle = 0,    // cell-cycle boundary: on_cycle(), then re-arm
    kRequest = 1,  // request lands at the scheduler; a=in, b=dst, d=issue time
    kGrant = 2,    // grant lands at the adapter; a/b/c=Grant, d=requested_at
    kRetry = 3,    // ARQ timeout expires; a=in, b=dst
    kLanding = 4,  // cell crosses into the egress buffer
  };
  struct Ev {
    double time_ns = 0.0;
    std::uint64_t seq = 0;
    EvKind kind = EvKind::kCycle;
    int a = -1;
    int b = -1;
    int c = -1;
    double d = 0.0;
    Cell cell;

    template <class Ar>
    void io_state(Ar& ar) {
      ckpt::field(ar, time_ns);
      ckpt::field(ar, seq);
      ckpt::field(ar, kind);
      ckpt::field(ar, a);
      ckpt::field(ar, b);
      ckpt::field(ar, c);
      ckpt::field(ar, d);
      ckpt::field(ar, cell);
    }
  };
  struct EvLater {
    bool operator()(const Ev& x, const Ev& y) const {
      if (x.time_ns != y.time_ns) return x.time_ns > y.time_ns;
      return x.seq > y.seq;
    }
  };
  enum class Phase : std::uint8_t { kMain = 0, kDrain = 1, kFlush = 2,
                                    kDone = 3 };

  void push_event(Ev ev);  // stamps seq, heapifies
  void fire_next();
  double ctrl_ns(int adapter) const;
  void on_cycle();
  /// Records one time-series row after cycle `cycle` when the sampler is
  /// enabled and due (DESIGN.md §11); cycle-count driven, deterministic.
  void sample_series(std::uint64_t cycle);
  void on_grant_arrival(Grant g, double requested_at);
  void apply_fault_transitions(std::uint64_t cycle);
  void set_module_state(int out, int rx, bool failed, std::uint64_t cycle);
  void block_input_ref(int in);
  void unblock_input_ref(int in);
  std::uint64_t backlog() const;
  template <class Ar>
  void io_core(Ar& a);
  template <class Ar>
  void io_stats(Ar& a);

  EventSwitchConfig cfg_;
  std::unique_ptr<sim::TrafficGen> traffic_;
  std::unique_ptr<Scheduler> sched_;
  std::vector<Ev> events_;  // min-heap (std::push_heap/pop_heap, EvLater)
  double now_ns_ = 0.0;
  std::uint64_t next_seq_ = 0;
  Phase phase_ = Phase::kMain;
  double drain_horizon_ = 0.0;
  bool cycles_active_ = true;
  std::uint64_t advance_count_ = 0;
  std::vector<VoqBank> voqs_;
  std::vector<std::deque<Cell>> egress_;
  std::vector<std::deque<double>> request_times_;  // per (in,out) FIFO
  std::vector<std::uint64_t> flow_seq_;
  // Receiver bookings per (output, cell-cycle index).
  std::map<std::pair<int, std::uint64_t>, int> slot_bookings_;
  std::uint64_t cycle_ = 0;

  sim::Histogram delay_ns_{8192.0, 1.1};
  sim::Histogram grant_ns_{1024.0, 1.1};
  sim::ThroughputMeter meter_;
  sim::ReorderDetector reorder_;
  std::uint64_t receiver_conflicts_ = 0;

  // ---- runtime fault injection & recovery -------------------------------
  std::optional<faults::FaultInjector> injector_;
  mgmt::HealthRegistry health_;
  chaos::InvariantMonitor monitor_;
  faults::RecoveryTracker recovery_;
  int fibers_ = 1;
  int wavelengths_ = 1;
  std::vector<std::vector<std::uint8_t>> rx_failed_;  // per (output, rx)
  std::vector<int> input_block_depth_;
  bool draining_ = false;
  // Cells between VOQ pop and egress landing, plus re-requests in
  // flight: both keep the post-run drain loop alive.
  std::uint64_t in_flight_ = 0;
  std::uint64_t retry_pending_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t grant_corruptions_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t faults_repaired_ = 0;
  std::uint64_t drained_cycles_ = 0;

  // telemetry
  telemetry::Telemetry telem_;
  std::vector<std::uint64_t> delivered_per_port_;
  // Time-series rate cursors (checkpointed with the core).
  std::uint64_t total_delivered_ = 0;
  std::uint64_t last_sample_cycle_ = 0;
  std::uint64_t last_sample_delivered_ = 0;
};

/// Uniform Bernoulli helper.
EventSwitchResult run_event_uniform(const EventSwitchConfig& cfg, double load,
                                    std::uint64_t seed);

}  // namespace osmosis::sw
