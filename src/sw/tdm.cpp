#include "src/sw/tdm.hpp"

namespace osmosis::sw {

TdmScheduler::TdmScheduler(int ports, int receivers)
    : Scheduler(ports, receivers) {}

std::vector<Grant> TdmScheduler::tick() {
  const int n = ports();
  std::vector<Grant> grants;
  const int shift = static_cast<int>(t_ % static_cast<std::uint64_t>(n));
  for (int in = 0; in < n; ++in) {
    const int out = (in + shift) % n;
    if (demand_.blocked(out)) continue;
    if (demand_.residual(in, out) > 0) {
      demand_.reserve(in, out);
      grants.push_back(Grant{in, out, 0});
    }
  }
  ++t_;
  number_receivers(grants);
  return grants;
}

}  // namespace osmosis::sw
