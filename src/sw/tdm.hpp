#pragma once
// Demand-oblivious time-division scheduler: in slot t, input i is wired
// to output (i + t) mod N. This is the connection pattern of the
// load-balanced Birkhoff-von-Neumann switch stages (§VI.D, [24]); as a
// central scheduler it shows why demand-aware matching is needed (an
// unloaded N-port TDM switch has N/2 average latency).

#include "src/sw/scheduler.hpp"

namespace osmosis::sw {

class TdmScheduler final : public Scheduler {
 public:
  TdmScheduler(int ports, int receivers);

  std::string name() const override { return "TDM"; }
  std::vector<Grant> tick() override;

  void save_state(ckpt::Sink& s) const override {
    Scheduler::save_state(s);
    ckpt::field(s, const_cast<std::uint64_t&>(t_));
  }
  void load_state(ckpt::Source& s) override {
    Scheduler::load_state(s);
    ckpt::field(s, t_);
  }

 private:
  std::uint64_t t_ = 0;
};

}  // namespace osmosis::sw
