#pragma once
// Wavefront arbiter (WFA): the classic hardware-friendly maximal
// matcher that sweeps the request matrix along diagonals — all cells of
// a diagonal are independent, so an N-port arbitration finishes in N
// combinational "wavefront" steps with no iteration loops or pointers.
// Included as the third arbitration family (after round-robin iSLIP and
// randomized PIM) for the scheduler comparison; the starting diagonal
// rotates each cell cycle for fairness.

#include "src/sw/scheduler.hpp"

namespace osmosis::sw {

class WfaScheduler final : public Scheduler {
 public:
  WfaScheduler(int ports, int receivers);

  std::string name() const override { return "WFA"; }
  std::vector<Grant> tick() override;

  void save_state(ckpt::Sink& s) const override {
    Scheduler::save_state(s);
    ckpt::field(s, const_cast<std::uint64_t&>(t_));
  }
  void load_state(ckpt::Source& s) override {
    Scheduler::load_state(s);
    ckpt::field(s, t_);
  }

 private:
  std::uint64_t t_ = 0;
};

}  // namespace osmosis::sw
