#pragma once
// Wavefront arbiter (WFA): the classic hardware-friendly maximal
// matcher that sweeps the request matrix along diagonals — all cells of
// a diagonal are independent, so an N-port arbitration finishes in N
// combinational "wavefront" steps with no iteration loops or pointers.
// Included as the third arbitration family (after round-robin iSLIP and
// randomized PIM) for the scheduler comparison; the starting diagonal
// rotates each cell cycle for fairness.

#include "src/sw/scheduler.hpp"

namespace osmosis::sw {

class WfaScheduler final : public Scheduler {
 public:
  WfaScheduler(int ports, int receivers);

  std::string name() const override { return "WFA"; }
  std::vector<Grant> tick() override;

 private:
  std::uint64_t t_ = 0;
};

}  // namespace osmosis::sw
