#include "src/sw/wfa.hpp"

namespace osmosis::sw {

WfaScheduler::WfaScheduler(int ports, int receivers)
    : Scheduler(ports, receivers) {}

std::vector<Grant> WfaScheduler::tick() {
  const int n = ports();
  std::vector<Grant> grants;
  std::vector<int> capacity(output_capacity_.begin(), output_capacity_.end());
  PortSet input_free(n);
  input_free.set_all();

  // Sweep diagonals d, d+1, ... (mod N), rotating the privileged
  // diagonal every cycle so no (input, output) pair is structurally
  // favoured.
  const int start = static_cast<int>(t_ % static_cast<std::uint64_t>(n));
  for (int k = 0; k < n; ++k) {
    const int d = (start + k) % n;
    for (int in = 0; in < n; ++in) {
      if (!input_free.test(in)) continue;
      const int out = (in + d) % n;
      if (capacity[static_cast<std::size_t>(out)] <= 0) continue;
      if (!demand_.candidates(out).test(in)) continue;
      input_free.clear(in);
      --capacity[static_cast<std::size_t>(out)];
      demand_.reserve(in, out);
      grants.push_back(Grant{in, out, 0});
    }
  }
  ++t_;
  number_receivers(grants);
  return grants;
}

}  // namespace osmosis::sw
