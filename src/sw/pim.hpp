#pragma once
// Parallel Iterative Matching (Anderson et al.): like iSLIP but with
// uniformly random grant and accept choices instead of round-robin
// pointers. Included as the classical randomized reference; its
// convergence in ~log2(N) iterations is the origin of the paper's
// "log2 N iterations" rule.

#include "src/sim/rng.hpp"
#include "src/sw/scheduler.hpp"

namespace osmosis::sw {

class PimScheduler final : public Scheduler {
 public:
  PimScheduler(int ports, int receivers, int iterations, sim::Rng rng);

  std::string name() const override;
  std::vector<Grant> tick() override;

  int iterations() const { return iterations_; }

  void save_state(ckpt::Sink& s) const override {
    Scheduler::save_state(s);
    ckpt::field(s, const_cast<sim::Rng&>(rng_));
  }
  void load_state(ckpt::Source& s) override {
    Scheduler::load_state(s);
    ckpt::field(s, rng_);
  }

 private:
  void run_iteration(IslipIteration::Matching& m);

  int iterations_;
  sim::Rng rng_;
  IslipIteration::Matching matching_;
  std::vector<std::vector<int>> grants_to_input_;  // scratch
  std::vector<int> granted_inputs_;                // scratch
};

}  // namespace osmosis::sw
