#pragma once
// Prior-art pipelined crossbar arbitration (the "previous state of the
// art" curve of Fig. 6; cf. [18]).
//
// The hardware constraint: one grant/accept iteration takes a full cell
// cycle (51.2 ns), yet good matchings need log2(N) iterations. Prior art
// deep-pipelines the scheduler: K = log2(N) sub-schedulers run
// staggered, each computing a complete K-iteration matching over K
// consecutive cycles from a *snapshot* of the requests taken when it
// started. One sub-scheduler finishes per cycle, so throughput is
// preserved — but every request waits for the full pipeline depth
// between request and grant, i.e. ~log2(N) cycles even in an empty
// switch. That latency is exactly what FLPPR removes.

#include <vector>

#include "src/sw/scheduler.hpp"

namespace osmosis::sw {

class PipelinedIslipScheduler final : public Scheduler {
 public:
  /// `depth` = 0 picks ceil(log2(ports)) sub-schedulers.
  PipelinedIslipScheduler(int ports, int receivers, int depth);

  std::string name() const override;
  std::vector<Grant> tick() override;

  int depth() const { return depth_; }

  void save_state(ckpt::Sink& s) const override {
    Scheduler::save_state(s);
    auto* self = const_cast<PipelinedIslipScheduler*>(this);
    ckpt::field(s, self->t_);
    std::uint64_t n = subs_.size();
    ckpt::field(s, n);
    for (auto& sub : self->subs_) {
      ckpt::field(s, sub.engine);
      ckpt::field(s, sub.matching);
      ckpt::field(s, sub.snapshot);
    }
  }
  void load_state(ckpt::Source& s) override {
    Scheduler::load_state(s);
    ckpt::field(s, t_);
    std::uint64_t n = 0;
    ckpt::field(s, n);
    if (n != subs_.size())
      throw ckpt::Error(
          "pipelined-iSLIP pipeline depth mismatch in checkpoint");
    for (auto& sub : subs_) {
      ckpt::field(s, sub.engine);
      ckpt::field(s, sub.matching);
      ckpt::field(s, sub.snapshot);
    }
  }

 protected:
  void on_output_capacity_changed(int out, int capacity) override;

 private:
  struct Sub {
    IslipIteration engine;
    IslipIteration::Matching matching;
    DemandState snapshot;  // requests visible to this sub-scheduler
    int phase;             // starts (re-snapshots) when t % depth == phase

    Sub(int ports, int phase_in)
        : engine(ports), snapshot(ports), phase(phase_in) {}
  };

  int depth_;
  std::vector<Sub> subs_;
  std::uint64_t t_ = 0;
};

}  // namespace osmosis::sw
