#pragma once
// Flow-control seam for the topology zoo (§IV.B): the three link-level
// schemes the topo simulator can cross with any Topology.
//
//  * kCredit     — the fabric simulators' scheme: credit-based FC with
//                  the credit returning over the cable, delayed by the
//                  link flight time. Buffers must cover the full
//                  round trip for 100% throughput.
//  * kRelayed    — the paper's relayed/piggybacked variant: buffer
//                  state is relayed through the central scheduler on
//                  the control path (piggybacked on grants), so the
//                  upstream stage learns of a freed buffer immediately
//                  (next cell cycle) instead of a cable flight later.
//  * kWormholeVc — wormhole routing with multi-lane virtual-channel
//                  flit buffers (Stergiou, PAPERS.md): packets of
//                  `flits_per_packet` flits advance head-first, each
//                  link multiplexes `lanes` VC lanes of `lane_flits`
//                  flit slots, and a packet holds its lane from head
//                  allocation to tail departure so flits of different
//                  packets never interleave within a lane.

#include <cstdint>
#include <string>

namespace osmosis::topo {

enum class FcKind : std::uint8_t {
  kCredit = 0,
  kRelayed = 1,
  kWormholeVc = 2,
};

const char* to_string(FcKind kind);
/// Inverse of to_string; aborts (OSMOSIS_REQUIRE) on an unknown name.
FcKind fc_kind_from_string(const std::string& name);

struct FcParams {
  FcKind kind = FcKind::kCredit;
  // Wormhole-VC knobs (ignored by the cell-granular kinds).
  int lanes = 2;            // virtual-channel lanes per link
  int lane_flits = 4;       // flit-buffer depth per lane
  int flits_per_packet = 4; // fixed packet length in flits
};

}  // namespace osmosis::topo
