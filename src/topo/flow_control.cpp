#include "src/topo/flow_control.hpp"

#include "src/util/log.hpp"

namespace osmosis::topo {

const char* to_string(FcKind kind) {
  switch (kind) {
    case FcKind::kCredit:
      return "credit";
    case FcKind::kRelayed:
      return "relayed";
    case FcKind::kWormholeVc:
      return "wormhole_vc";
  }
  return "?";
}

FcKind fc_kind_from_string(const std::string& name) {
  for (FcKind k :
       {FcKind::kCredit, FcKind::kRelayed, FcKind::kWormholeVc}) {
    if (name == to_string(k)) return k;
  }
  OSMOSIS_REQUIRE(false, "unknown flow-control kind '" << name << "'");
  return FcKind::kCredit;
}

}  // namespace osmosis::topo
