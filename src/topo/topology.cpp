#include "src/topo/topology.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::topo {
namespace {

// Same mixer the campaign seed derivation uses; here it spreads the
// kHashSpread routing digit so the constant is part of the routing
// contract (changing it re-routes every hash-spread flow).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t route_hash(int sw, int dst) {
  return splitmix64(static_cast<std::uint64_t>(sw) * 0x9E3779B97F4A7C15ULL ^
                    static_cast<std::uint64_t>(dst));
}

int ilog2_exact(int v) {
  int k = 0;
  while ((1 << k) < v) ++k;
  return (1 << k) == v ? k : -1;
}

// Line covered by (column switch j, port p) when the column pairs lines
// differing in bit b: insert bit p at position b of j.
int min_line(int j, int p, int b) {
  const int low = j & ((1 << b) - 1);
  const int high = j >> b;
  return (high << (b + 1)) | low | (p << b);
}

int min_switch_of_line(int l, int b) {
  const int low = l & ((1 << b) - 1);
  return (l >> (b + 1)) << b | low;
}

int min_port_of_line(int l, int b) { return (l >> b) & 1; }

}  // namespace

const char* to_string(TopoKind kind) {
  switch (kind) {
    case TopoKind::kFatTree: return "fat_tree";
    case TopoKind::kClos: return "clos";
    case TopoKind::kOmega: return "omega";
    case TopoKind::kBanyan: return "banyan";
    case TopoKind::kBenes: return "benes";
  }
  return "?";
}

TopoKind topo_kind_from_string(const std::string& name) {
  for (TopoKind k : {TopoKind::kFatTree, TopoKind::kClos, TopoKind::kOmega,
                     TopoKind::kBanyan, TopoKind::kBenes})
    if (name == to_string(k)) return k;
  OSMOSIS_REQUIRE(false, "unknown topology kind '" << name << "'");
  return TopoKind::kFatTree;
}

const char* to_string(RouteKind kind) {
  switch (kind) {
    case RouteKind::kDestMod: return "dmod";
    case RouteKind::kHashSpread: return "hash";
  }
  return "?";
}

RouteKind route_kind_from_string(const std::string& name) {
  for (RouteKind k : {RouteKind::kDestMod, RouteKind::kHashSpread})
    if (name == to_string(k)) return k;
  OSMOSIS_REQUIRE(false, "unknown routing kind '" << name << "'");
  return RouteKind::kDestMod;
}

Shape derive_shape(TopoKind kind, int hosts) {
  Shape s;
  std::ostringstream err;
  switch (kind) {
    case TopoKind::kFatTree: {
      // Canonical two-level shape: radix * (radix/2) endpoints.
      for (int radix = 4; radix * (radix / 2) <= hosts; radix += 2) {
        if (radix * (radix / 2) == hosts) {
          s.ok = true;
          s.radix = radix;
          s.levels = 2;
          return s;
        }
      }
      int lo_radix = 4, hi_radix = 4;
      while (hi_radix * (hi_radix / 2) < hosts) hi_radix += 2;
      lo_radix = hi_radix > 4 ? hi_radix - 2 : 4;
      err << "fat_tree: " << hosts
          << " ports is not radix*(radix/2) for any even radix; nearest "
             "valid counts are "
          << lo_radix * (lo_radix / 2) << " (radix " << lo_radix << ") and "
          << hi_radix * (hi_radix / 2) << " (radix " << hi_radix << ")";
      break;
    }
    case TopoKind::kClos: {
      if (hosts < 4) {
        err << "clos: need at least 4 ports, got " << hosts;
        break;
      }
      int bits = 0;
      while ((1 << (bits + 1)) <= hosts) ++bits;
      const int n = 1 << (bits / 2);
      if (n < 2 || hosts % n != 0 || hosts / n < 2) {
        err << "clos: " << hosts << " ports does not factor as n*r with n="
            << n << " (the canonical (m,n,r)=(" << n << "," << n << ","
            << hosts / std::max(n, 1)
            << ") needs r*n ports; nearest valid count is "
            << (hosts / n) * n << ")";
        break;
      }
      s.ok = true;
      s.n = n;
      s.m = n;
      s.r = hosts / n;
      return s;
    }
    case TopoKind::kOmega:
    case TopoKind::kBanyan:
    case TopoKind::kBenes: {
      const int k = hosts >= 4 ? ilog2_exact(hosts) : -1;
      if (k < 0) {
        int below = 4;
        while (below * 2 <= hosts) below *= 2;
        err << to_string(kind) << ": " << hosts
            << " ports is not a power of two >= 4 (a 2x2-arrangement MIN "
               "needs one; nearest are "
            << below << " and " << below * 2 << ")";
        break;
      }
      s.ok = true;
      s.log2_hosts = k;
      return s;
    }
  }
  s.error = err.str();
  return s;
}

int Topology::route_port(int sw, int dst) const {
  const SwitchSpec& node = switches[static_cast<std::size_t>(sw)];
  if (!node.route.empty()) return node.route[static_cast<std::size_t>(dst)];

  // Unidirectional MINs answer in closed form: a per-switch table would
  // be hosts * switches entries — hundreds of MB at 2048 ports.
  const int k = static_cast<int>(params.at("log2_hosts"));
  const int c = node.stage - 1;  // 0-based column
  switch (kind) {
    case TopoKind::kOmega:
    case TopoKind::kBanyan:
      return (dst >> (k - 1 - c)) & 1;
    case TopoKind::kBenes: {
      const int b = c < k ? k - 1 - c : c - k + 1;
      if (c >= k - 1) return (dst >> b) & 1;  // self-routing half
      // Free half: any choice reaches dst; spread per RouteKind.
      if (routing == RouteKind::kHashSpread)
        return static_cast<int>(route_hash(sw, dst) & 1);
      return (dst >> b) & 1;
    }
    default:
      OSMOSIS_REQUIRE(false, "topology " << name << " has no route table");
  }
  return -1;
}

std::vector<std::string> Topology::audit(std::size_t max_findings) const {
  std::vector<std::string> findings;
  auto report = [&](const std::ostringstream& oss) {
    if (findings.size() < max_findings) findings.push_back(oss.str());
  };
  for (int src = 0; src < hosts && findings.size() < max_findings; ++src) {
    const HostAttach at = inject[static_cast<std::size_t>(src)];
    for (int dst = 0; dst < hosts; ++dst) {
      int sw = at.sw;
      bool done = false;
      for (int hop = 0; hop <= diameter; ++hop) {
        if (dead(sw)) {
          std::ostringstream oss;
          oss << "failed switches disconnect host " << dst << " from host "
              << src << " (path dead-ends at switch " << sw << ")";
          report(oss);
          done = true;
          break;
        }
        const int out = route_port(sw, dst);
        if (out < 0) {
          std::ostringstream oss;
          oss << "failed switches disconnect host " << dst << " from host "
              << src << " (no surviving route at switch " << sw << ")";
          report(oss);
          done = true;
          break;
        }
        const Peer& peer =
            switches[static_cast<std::size_t>(sw)]
                .out_peer[static_cast<std::size_t>(out)];
        if (peer.kind == PeerKind::kHost) {
          if (peer.id != dst) {
            std::ostringstream oss;
            oss << "route from host " << src << " toward host " << dst
                << " delivers to host " << peer.id << " (switch " << sw
                << " port " << out << ")";
            report(oss);
          }
          done = true;
          break;
        }
        sw = peer.id;
      }
      if (!done) {
        std::ostringstream oss;
        oss << "routing loop toward host " << dst << " from host " << src
            << " (exceeded " << diameter << " switch hops)";
        report(oss);
      }
      if (findings.size() >= max_findings) break;
    }
  }
  return findings;
}

std::vector<int> Topology::stage_switches(int stage) const {
  std::vector<int> out;
  for (int i = 0; i < switch_count(); ++i)
    if (switches[static_cast<std::size_t>(i)].stage == stage)
      out.push_back(i);
  return out;
}

// ---- fat tree (folded Clos) ------------------------------------------------

namespace {

// Build state for the FT' recursion; mirrors ClosFabricSim's historical
// wiring exactly (same switch ids, port roles, and d-mod-k route choice)
// so the fabric simulators consume this Topology unchanged.
struct FatTreeBuilder {
  const FatTreeParams& p;
  int m;
  Topology t;
  std::vector<HostAttach>& attach;

  struct Uplink {
    int sw;
    int port;
  };

  explicit FatTreeBuilder(const FatTreeParams& params)
      : p(params), m(params.radix / 2), attach(t.inject) {}

  int new_switch(int level) {
    SwitchSpec node;
    node.stage = level;
    node.in_peer.resize(static_cast<std::size_t>(p.radix));
    t.switches.push_back(std::move(node));
    return static_cast<int>(t.switches.size()) - 1;
  }

  void wire(int sw_a, int port_a, int sw_b, int port_b, int delay) {
    auto& a = t.switches[static_cast<std::size_t>(sw_a)];
    auto& b = t.switches[static_cast<std::size_t>(sw_b)];
    OSMOSIS_REQUIRE(
        a.in_peer[static_cast<std::size_t>(port_a)].kind == PeerKind::kNone &&
            b.in_peer[static_cast<std::size_t>(port_b)].kind ==
                PeerKind::kNone,
        "double wiring of a port");
    a.in_peer[static_cast<std::size_t>(port_a)] =
        Peer{PeerKind::kSwitch, sw_b, port_b, delay};
    b.in_peer[static_cast<std::size_t>(port_b)] =
        Peer{PeerKind::kSwitch, sw_a, port_a, delay};
  }

  std::vector<Uplink> build_slice(int level, int& host_base) {
    std::vector<Uplink> uplinks;
    if (level == 1) {
      const int sw = new_switch(1);
      auto& node = t.switches[static_cast<std::size_t>(sw)];
      for (int q = 0; q < m; ++q) {
        const int host = host_base++;
        node.in_peer[static_cast<std::size_t>(q)] =
            Peer{PeerKind::kHost, host, -1, p.host_delay};
        node.down_ranges.push_back({host, host + 1, q});
        attach.push_back(HostAttach{sw, q});
      }
      for (int u = 0; u < m; ++u) {
        node.up_ports.push_back(m + u);
        uplinks.push_back(Uplink{sw, m + u});
      }
      return uplinks;
    }
    std::vector<std::vector<Uplink>> pod_up;
    std::vector<std::pair<int, int>> pod_range;
    for (int i = 0; i < m; ++i) {
      const int lo = host_base;
      pod_up.push_back(build_slice(level - 1, host_base));
      pod_range.emplace_back(lo, host_base);
    }
    const int top_count = static_cast<int>(pod_up[0].size());
    std::vector<int> tops;
    for (int j = 0; j < top_count; ++j) tops.push_back(new_switch(level));
    for (int i = 0; i < m; ++i) {
      OSMOSIS_REQUIRE(
          static_cast<int>(pod_up[static_cast<std::size_t>(i)].size()) ==
              top_count,
          "unbalanced pod uplink counts");
      for (int j = 0; j < top_count; ++j) {
        const Uplink& up =
            pod_up[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        wire(up.sw, up.port, tops[static_cast<std::size_t>(j)], i,
             p.trunk_delay);
        t.switches[static_cast<std::size_t>(tops[static_cast<std::size_t>(j)])]
            .down_ranges.push_back(
                {pod_range[static_cast<std::size_t>(i)].first,
                 pod_range[static_cast<std::size_t>(i)].second, i});
      }
    }
    // Uplinks of this slice: ports m..2m-1 of every top switch, spread
    // so consecutive indices hit distinct switches.
    for (int u = 0; u < m; ++u) {
      for (int j = 0; j < top_count; ++j) {
        t.switches[static_cast<std::size_t>(tops[static_cast<std::size_t>(j)])]
            .up_ports.push_back(m + u);
        uplinks.push_back(Uplink{tops[static_cast<std::size_t>(j)], m + u});
      }
    }
    return uplinks;
  }

  bool reachable(int sw, int dst, std::vector<signed char>& memo) const {
    signed char& mv = memo[static_cast<std::size_t>(sw) *
                               static_cast<std::size_t>(t.hosts) +
                           static_cast<std::size_t>(dst)];
    if (mv != -1) return mv != 0;
    bool ok = false;
    if (!t.dead(sw)) {
      const SwitchSpec& node = t.switches[static_cast<std::size_t>(sw)];
      int down = -1;
      for (const auto& dr : node.down_ranges)
        if (dst >= dr.lo && dst < dr.hi) {
          down = dr.port;
          break;
        }
      if (down >= 0) {
        const Peer& peer = node.in_peer[static_cast<std::size_t>(down)];
        ok = peer.kind == PeerKind::kHost || reachable(peer.id, dst, memo);
      } else {
        for (const int u : node.up_ports) {
          const Peer& peer = node.in_peer[static_cast<std::size_t>(u)];
          if (peer.kind == PeerKind::kSwitch && reachable(peer.id, dst, memo)) {
            ok = true;
            break;
          }
        }
      }
    }
    mv = ok ? 1 : 0;
    return ok;
  }

  void build_routes() {
    const bool degraded =
        std::find(t.failed.begin(), t.failed.end(), 1) != t.failed.end();
    std::vector<signed char> memo;
    if (degraded)
      memo.assign(t.switches.size() * static_cast<std::size_t>(t.hosts), -1);
    for (std::size_t si = 0; si < t.switches.size(); ++si) {
      SwitchSpec& node = t.switches[si];
      node.route.assign(static_cast<std::size_t>(t.hosts), -1);
      if (degraded && t.dead(static_cast<int>(si)))
        continue;  // carries no cells; routes stay unused
      for (int dst = 0; dst < t.hosts; ++dst) {
        int port = -1;
        for (const auto& dr : node.down_ranges) {
          if (dst >= dr.lo && dst < dr.hi) {
            port = dr.port;
            break;
          }
        }
        if (port < 0) {
          OSMOSIS_REQUIRE(!node.up_ports.empty(),
                          "top-level switch cannot reach host " << dst);
          // Static destination-digit uplink choice (d-mod-k): level l
          // keys on the l-th base-m digit of the destination — traffic
          // reaching a level-l switch already shares the lower digits,
          // so reusing them would funnel everything onto one uplink.
          // kHashSpread replaces the digit with a per-(switch, dst)
          // hash. Both are deterministic per destination, preserving
          // per-flow order.
          std::uint64_t digit;
          if (p.routing == RouteKind::kHashSpread) {
            digit = route_hash(static_cast<int>(si), dst);
          } else {
            digit = static_cast<std::uint64_t>(dst);
            for (int l = 1; l < node.stage; ++l)
              digit /= static_cast<std::uint64_t>(m);
          }
          if (!degraded) {
            port = node.up_ports[digit % node.up_ports.size()];
          } else {
            // Same digit, spread over the uplinks whose peer still
            // reaches dst: reproduces the fault-free table exactly when
            // nothing failed, re-spreads deterministically around holes.
            std::vector<int> valid;
            for (const int u : node.up_ports) {
              const Peer& peer = node.in_peer[static_cast<std::size_t>(u)];
              if (peer.kind == PeerKind::kSwitch &&
                  reachable(peer.id, dst, memo))
                valid.push_back(u);
            }
            if (valid.empty()) continue;  // audit() reports the pair
            port = valid[digit % valid.size()];
          }
        }
        node.route[static_cast<std::size_t>(dst)] = port;
      }
    }
  }
};

}  // namespace

Topology make_fat_tree(const FatTreeParams& p) {
  OSMOSIS_REQUIRE(p.radix >= 2 && p.radix % 2 == 0,
                  "fat-tree radix must be even and >= 2, got " << p.radix);
  OSMOSIS_REQUIRE(p.levels >= 1 && p.levels <= 4,
                  "fat-tree levels must be in 1..4, got " << p.levels);

  FatTreeBuilder b(p);
  Topology& t = b.t;
  t.kind = TopoKind::kFatTree;
  t.routing = p.routing;
  t.folded = true;
  t.host_delay = p.host_delay;
  t.trunk_delay = p.trunk_delay;

  int host_base = 0;
  if (p.levels == 1) {
    const int sw = b.new_switch(1);
    auto& node = t.switches[static_cast<std::size_t>(sw)];
    for (int q = 0; q < p.radix; ++q) {
      node.in_peer[static_cast<std::size_t>(q)] =
          Peer{PeerKind::kHost, host_base, -1, p.host_delay};
      node.down_ranges.push_back({host_base, host_base + 1, q});
      t.inject.push_back(HostAttach{sw, q});
      ++host_base;
    }
  } else {
    // radix pods of FT'(L-1) + m^(L-1) top switches, every port down.
    std::vector<std::vector<FatTreeBuilder::Uplink>> pod_up;
    std::vector<std::pair<int, int>> pod_range;
    for (int q = 0; q < p.radix; ++q) {
      const int lo = host_base;
      pod_up.push_back(b.build_slice(p.levels - 1, host_base));
      pod_range.emplace_back(lo, host_base);
    }
    const int top_count = static_cast<int>(pod_up[0].size());
    for (int j = 0; j < top_count; ++j) {
      const int top = b.new_switch(p.levels);
      for (int q = 0; q < p.radix; ++q) {
        const FatTreeBuilder::Uplink& up =
            pod_up[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)];
        b.wire(up.sw, up.port, top, q, p.trunk_delay);
        t.switches[static_cast<std::size_t>(top)].down_ranges.push_back(
            {pod_range[static_cast<std::size_t>(q)].first,
             pod_range[static_cast<std::size_t>(q)].second, q});
      }
    }
  }
  t.hosts = host_base;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(p.radix) *
      util::ipow(static_cast<std::uint64_t>(b.m),
                 static_cast<unsigned>(p.levels - 1));
  OSMOSIS_REQUIRE(static_cast<std::uint64_t>(t.hosts) == expected,
                  "built " << t.hosts << " hosts, expected " << expected);

  t.failed.assign(t.switches.size(), 0);
  for (const int id : p.failed_switches) {
    OSMOSIS_REQUIRE(id >= 0 && id < t.switch_count(),
                    "failed switch " << id << " out of range (have "
                                     << t.switch_count() << " switches)");
    const SwitchSpec& node = t.switches[static_cast<std::size_t>(id)];
    if (node.stage == 1) {
      // A leaf is its hosts' only attachment point: no rerouting exists.
      const int lo = node.down_ranges.front().lo;
      const int hi = node.down_ranges.back().hi;
      OSMOSIS_REQUIRE(false, "failed leaf switch "
                                 << id << " disconnects hosts " << lo << ".."
                                 << hi - 1 << " outright");
    }
    t.failed[static_cast<std::size_t>(id)] = 1;
  }

  b.build_routes();
  for (auto& node : t.switches) node.out_peer = node.in_peer;
  t.deliver = t.inject;

  t.stages = 2 * p.levels - 1;
  t.diameter = 2 * p.levels - 1;
  std::ostringstream name;
  name << "fat_tree(r" << p.radix << ",L" << p.levels << ")";
  t.name = name.str();
  t.params["radix"] = p.radix;
  t.params["levels"] = p.levels;
  return t;
}

// ---- Clos(m,n,r) -----------------------------------------------------------

Topology make_clos(const ClosParams& p) {
  OSMOSIS_REQUIRE(p.m >= 1 && p.n >= 1 && p.r >= 1,
                  "clos(m,n,r) parameters must be positive, got (m" << p.m
                      << ",n" << p.n << ",r" << p.r << ")");
  Topology t;
  t.kind = TopoKind::kClos;
  t.routing = p.routing;
  t.folded = false;
  t.host_delay = p.host_delay;
  t.trunk_delay = p.trunk_delay;
  t.hosts = p.n * p.r;
  t.stages = 3;
  t.diameter = 3;

  const int ingress0 = 0;
  const int middle0 = p.r;
  const int egress0 = p.r + p.m;
  t.switches.resize(static_cast<std::size_t>(2 * p.r + p.m));
  t.failed.assign(t.switches.size(), 0);
  std::vector<int> live_middles;
  {
    std::vector<std::uint8_t> dead_mid(static_cast<std::size_t>(p.m), 0);
    for (const int j : p.failed_middles) {
      OSMOSIS_REQUIRE(j >= 0 && j < p.m,
                      "failed middle " << j << " outside 0.." << p.m - 1);
      dead_mid[static_cast<std::size_t>(j)] = 1;
      t.failed[static_cast<std::size_t>(middle0 + j)] = 1;
    }
    for (int j = 0; j < p.m; ++j)
      if (!dead_mid[static_cast<std::size_t>(j)]) live_middles.push_back(j);
  }

  for (int i = 0; i < p.r; ++i) {  // ingress: n hosts in, m middles out
    SwitchSpec& node = t.switches[static_cast<std::size_t>(ingress0 + i)];
    node.stage = 1;
    node.in_peer.resize(static_cast<std::size_t>(p.n));
    node.out_peer.resize(static_cast<std::size_t>(p.m));
    for (int q = 0; q < p.n; ++q) {
      const int host = i * p.n + q;
      node.in_peer[static_cast<std::size_t>(q)] =
          Peer{PeerKind::kHost, host, -1, p.host_delay};
      t.inject.push_back(HostAttach{ingress0 + i, q});
    }
    for (int j = 0; j < p.m; ++j)
      node.out_peer[static_cast<std::size_t>(j)] =
          Peer{PeerKind::kSwitch, middle0 + j, i, p.trunk_delay};
  }
  for (int j = 0; j < p.m; ++j) {  // middle: r x r
    SwitchSpec& node = t.switches[static_cast<std::size_t>(middle0 + j)];
    node.stage = 2;
    node.in_peer.resize(static_cast<std::size_t>(p.r));
    node.out_peer.resize(static_cast<std::size_t>(p.r));
    for (int i = 0; i < p.r; ++i) {
      node.in_peer[static_cast<std::size_t>(i)] =
          Peer{PeerKind::kSwitch, ingress0 + i, j, p.trunk_delay};
      node.out_peer[static_cast<std::size_t>(i)] =
          Peer{PeerKind::kSwitch, egress0 + i, j, p.trunk_delay};
    }
  }
  for (int e = 0; e < p.r; ++e) {  // egress: m middles in, n hosts out
    SwitchSpec& node = t.switches[static_cast<std::size_t>(egress0 + e)];
    node.stage = 3;
    node.in_peer.resize(static_cast<std::size_t>(p.m));
    node.out_peer.resize(static_cast<std::size_t>(p.n));
    for (int j = 0; j < p.m; ++j)
      node.in_peer[static_cast<std::size_t>(j)] =
          Peer{PeerKind::kSwitch, middle0 + j, e, p.trunk_delay};
    for (int q = 0; q < p.n; ++q) {
      const int host = e * p.n + q;
      node.out_peer[static_cast<std::size_t>(q)] =
          Peer{PeerKind::kHost, host, -1, p.host_delay};
      t.deliver.push_back(HostAttach{egress0 + e, q});
    }
  }

  // Static route tables (small: only 2r+m switches). Ingress spreads
  // destinations over the live middles by destination digit or hash;
  // middles and egresses self-route on the destination.
  for (int i = 0; i < p.r; ++i) {
    SwitchSpec& node = t.switches[static_cast<std::size_t>(ingress0 + i)];
    node.route.assign(static_cast<std::size_t>(t.hosts), -1);
    for (int dst = 0; dst < t.hosts; ++dst) {
      if (live_middles.empty()) continue;  // audit() reports the pairs
      const std::uint64_t digit =
          p.routing == RouteKind::kHashSpread
              ? route_hash(ingress0 + i, dst)
              : static_cast<std::uint64_t>(dst);
      node.route[static_cast<std::size_t>(dst)] =
          live_middles[digit % live_middles.size()];
    }
  }
  for (int j = 0; j < p.m; ++j) {
    SwitchSpec& node = t.switches[static_cast<std::size_t>(middle0 + j)];
    node.route.assign(static_cast<std::size_t>(t.hosts), -1);
    if (t.failed[static_cast<std::size_t>(middle0 + j)]) continue;
    for (int dst = 0; dst < t.hosts; ++dst)
      node.route[static_cast<std::size_t>(dst)] = dst / p.n;
  }
  for (int e = 0; e < p.r; ++e) {
    SwitchSpec& node = t.switches[static_cast<std::size_t>(egress0 + e)];
    node.route.assign(static_cast<std::size_t>(t.hosts), -1);
    for (int dst = 0; dst < t.hosts; ++dst)
      if (dst / p.n == e) node.route[static_cast<std::size_t>(dst)] = dst % p.n;
  }

  t.stages = 3;
  std::ostringstream name;
  name << "clos(m" << p.m << ",n" << p.n << ",r" << p.r << ")";
  t.name = name.str();
  t.params["m"] = p.m;
  t.params["n"] = p.n;
  t.params["r"] = p.r;
  return t;
}

// ---- MINs from the fundamental 2x2 arrangement -----------------------------

namespace {

Topology make_min_common(TopoKind kind, const MinParams& p, int columns) {
  const int k = ilog2_exact(p.hosts);
  OSMOSIS_REQUIRE(p.hosts >= 4 && k > 0,
                  to_string(kind) << " needs a power-of-two port count >= 4, "
                                     "got "
                                  << p.hosts);
  Topology t;
  t.kind = kind;
  t.routing = p.routing;
  t.folded = false;
  t.host_delay = p.host_delay;
  t.trunk_delay = p.trunk_delay;
  t.hosts = p.hosts;
  t.stages = columns;
  t.diameter = columns;
  const int per_col = p.hosts / 2;
  t.switches.resize(static_cast<std::size_t>(columns * per_col));
  t.failed.assign(t.switches.size(), 0);
  for (int c = 0; c < columns; ++c)
    for (int j = 0; j < per_col; ++j) {
      SwitchSpec& node =
          t.switches[static_cast<std::size_t>(c * per_col + j)];
      node.stage = c + 1;
      node.in_peer.resize(2);
      node.out_peer.resize(2);
    }
  t.inject.resize(static_cast<std::size_t>(p.hosts));
  t.deliver.resize(static_cast<std::size_t>(p.hosts));
  std::ostringstream name;
  name << to_string(kind) << p.hosts;
  t.name = name.str();
  t.params["log2_hosts"] = k;
  return t;
}

void min_wire(Topology& t, int from_sw, int from_port, int to_sw, int to_port,
              int delay) {
  t.switches[static_cast<std::size_t>(from_sw)]
      .out_peer[static_cast<std::size_t>(from_port)] =
      Peer{PeerKind::kSwitch, to_sw, to_port, delay};
  t.switches[static_cast<std::size_t>(to_sw)]
      .in_peer[static_cast<std::size_t>(to_port)] =
      Peer{PeerKind::kSwitch, from_sw, from_port, delay};
}

void min_wire_host_in(Topology& t, int host, int sw, int port) {
  t.switches[static_cast<std::size_t>(sw)]
      .in_peer[static_cast<std::size_t>(port)] =
      Peer{PeerKind::kHost, host, -1, t.host_delay};
  t.inject[static_cast<std::size_t>(host)] = HostAttach{sw, port};
}

void min_wire_host_out(Topology& t, int host, int sw, int port) {
  t.switches[static_cast<std::size_t>(sw)]
      .out_peer[static_cast<std::size_t>(port)] =
      Peer{PeerKind::kHost, host, -1, t.host_delay};
  t.deliver[static_cast<std::size_t>(host)] = HostAttach{sw, port};
}

// Butterfly-family wiring (banyan, benes): column c pairs lines
// differing in bit_of(c); lines keep their index between columns.
Topology make_butterfly_family(TopoKind kind, const MinParams& p, int columns,
                               const std::vector<int>& bit_of) {
  Topology t = make_min_common(kind, p, columns);
  const int per_col = p.hosts / 2;
  for (int c = 0; c < columns; ++c) {
    const int b = bit_of[static_cast<std::size_t>(c)];
    for (int j = 0; j < per_col; ++j) {
      const int sw = c * per_col + j;
      for (int q = 0; q < 2; ++q) {
        const int line = min_line(j, q, b);
        if (c == 0) min_wire_host_in(t, line, sw, q);
        if (c == columns - 1) {
          min_wire_host_out(t, line, sw, q);
        } else {
          const int nb = bit_of[static_cast<std::size_t>(c + 1)];
          min_wire(t, sw, q,
                   (c + 1) * per_col + min_switch_of_line(line, nb),
                   min_port_of_line(line, nb), t.trunk_delay);
        }
      }
    }
  }
  return t;
}

}  // namespace

Topology make_banyan(const MinParams& p) {
  Shape s = derive_shape(TopoKind::kBanyan, p.hosts);
  OSMOSIS_REQUIRE(s.ok, s.error);
  const int k = s.log2_hosts;
  std::vector<int> bits;
  for (int c = 0; c < k; ++c) bits.push_back(k - 1 - c);
  return make_butterfly_family(TopoKind::kBanyan, p, k, bits);
}

Topology make_benes(const MinParams& p) {
  Shape s = derive_shape(TopoKind::kBenes, p.hosts);
  OSMOSIS_REQUIRE(s.ok, s.error);
  const int k = s.log2_hosts;
  // Butterfly (bits k-1..1), the bit-0 column, mirrored butterfly
  // (bits 1..k-1): the two fundamental arrangements share the middle
  // column, giving 2k-1 columns total.
  std::vector<int> bits;
  for (int c = 0; c < 2 * k - 1; ++c)
    bits.push_back(c < k ? k - 1 - c : c - k + 1);
  return make_butterfly_family(TopoKind::kBenes, p, 2 * k - 1, bits);
}

Topology make_omega(const MinParams& p) {
  Shape s = derive_shape(TopoKind::kOmega, p.hosts);
  OSMOSIS_REQUIRE(s.ok, s.error);
  const int k = s.log2_hosts;
  Topology t = make_min_common(TopoKind::kOmega, p, k);
  const int n = p.hosts;
  const int per_col = n / 2;
  const auto shuffle = [&](int l) {
    return ((l << 1) | (l >> (k - 1))) & (n - 1);
  };
  // Hosts enter column 0 through a perfect shuffle; a shuffle precedes
  // every later column too; the last column's outputs are the hosts.
  for (int h = 0; h < n; ++h) {
    const int pos = shuffle(h);
    min_wire_host_in(t, h, pos / 2, pos & 1);
  }
  for (int c = 0; c < k; ++c) {
    for (int j = 0; j < per_col; ++j) {
      const int sw = c * per_col + j;
      for (int q = 0; q < 2; ++q) {
        const int out_pos = 2 * j + q;
        if (c == k - 1) {
          min_wire_host_out(t, out_pos, sw, q);
        } else {
          const int next = shuffle(out_pos);
          min_wire(t, sw, q, (c + 1) * per_col + next / 2, next & 1,
                   t.trunk_delay);
        }
      }
    }
  }
  return t;
}

Topology make_topology(TopoKind kind, int hosts, RouteKind routing,
                       const std::vector<int>& failed_switches,
                       int host_delay, int trunk_delay) {
  const Shape s = derive_shape(kind, hosts);
  OSMOSIS_REQUIRE(s.ok, s.error);
  switch (kind) {
    case TopoKind::kFatTree: {
      FatTreeParams p;
      p.radix = s.radix;
      p.levels = s.levels;
      p.routing = routing;
      p.failed_switches = failed_switches;
      p.host_delay = host_delay;
      p.trunk_delay = trunk_delay;
      return make_fat_tree(p);
    }
    case TopoKind::kClos: {
      ClosParams p;
      p.m = s.m;
      p.n = s.n;
      p.r = s.r;
      p.routing = routing;
      // The generic interface speaks global switch ids (the layout
      // mgmt::validate_topology reports: ingress 0..r-1, middles
      // r..r+m-1, egress r+m..); make_clos wants middle-column indices.
      for (const int id : failed_switches) {
        OSMOSIS_REQUIRE(id >= s.r && id < s.r + s.m,
                        "failed switch " << id
                                         << " is not a middle switch (clos "
                                            "middles are ids "
                                         << s.r << ".." << s.r + s.m - 1
                                         << "; ingress/egress failures "
                                            "disconnect hosts outright)");
        p.failed_middles.push_back(id - s.r);
      }
      p.host_delay = host_delay;
      p.trunk_delay = trunk_delay;
      return make_clos(p);
    }
    case TopoKind::kOmega:
    case TopoKind::kBanyan:
    case TopoKind::kBenes: {
      OSMOSIS_REQUIRE(failed_switches.empty(),
                      to_string(kind)
                          << " has a unique path per (src, dst): a permanent "
                             "switch failure disconnects hosts — use a "
                             "transient fault window instead");
      MinParams p;
      p.hosts = hosts;
      p.routing = routing;
      p.host_delay = host_delay;
      p.trunk_delay = trunk_delay;
      if (kind == TopoKind::kOmega) return make_omega(p);
      if (kind == TopoKind::kBanyan) return make_banyan(p);
      return make_benes(p);
    }
  }
  OSMOSIS_REQUIRE(false, "unhandled topology kind");
  return Topology{};
}

}  // namespace osmosis::topo
