#pragma once
// Slot-synchronous topology x flow-control simulator — the execution
// engine behind the simulated §VI.C scenario matrix. One machine runs
// any zoo Topology (fat tree, Clos(m,n,r), Omega/Banyan/Benes) under
// any FcKind:
//
//  * kCredit / kRelayed move whole cells through per-switch VOQs with
//    an independent central scheduler per switch (the fabric
//    simulators' machinery, re-used over the Topology peer tables);
//    they differ only in when a freed buffer's credit reaches the
//    upstream stage (cable flight vs immediately, §IV.B).
//  * kWormholeVc moves packets as flit worms through multi-lane VC
//    buffers with per-output round-robin flit arbitration; a packet's
//    lane on every link is dst mod lanes, so per-flow order is
//    preserved by construction and the acyclic (feed-forward or
//    up/down) routes stay deadlock-free.
//
// The simulator carries the full chaos-soak contract of the fabric
// sims: per-slot cell-conservation and credit/flit-ledger invariants
// (chaos::InvariantMonitor), transient mid-run switch faults with
// freeze-and-backpressure semantics, kill-safe checkpoint/resume
// ("topo.*" chunks), and a RunReport with the new "topology" section
// (stage count, diameter, VC occupancy, per-stage latency).

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/chaos/monitor.hpp"
#include "src/ckpt/ckpt.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/sim/stats.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/scheduler.hpp"
#include "src/topo/flow_control.hpp"
#include "src/topo/topology.hpp"

namespace osmosis::telemetry {
struct RunReport;
}

namespace osmosis::topo {

struct TopoSimConfig {
  TopoKind topology = TopoKind::kFatTree;
  int hosts = 16;
  RouteKind routing = RouteKind::kDestMod;
  // Construction-time permanent faults, routed around where the
  // topology has path diversity (fat-tree non-leaf switches, Clos
  // middles); rejected by the unique-path MINs.
  std::vector<int> failed_switches;
  FcParams fc;
  int buffer_cells = 16;  // input-buffer capacity per port (cell kinds)
  int host_cable_slots = 1;
  int trunk_cable_slots = 4;
  // Cell kinds only: per-switch central scheduler. Must be an
  // immediate-issue kind (kIslip, kPim, kTdm, kWfa).
  sw::SchedulerKind scheduler = sw::SchedulerKind::kIslip;
  int scheduler_iterations = 0;
  std::uint64_t warmup_slots = 2'000;
  std::uint64_t measure_slots = 20'000;
  // Extra arrival-free slots after the measurement window so the
  // exactly-once audit can see every cell land. 0 = no drain.
  std::uint64_t drain_max_slots = 0;
  // Mid-run faults. Accepted kinds: kPlaneFailure (a = index into the
  // fault stage's switch list — top level for folded trees, the middle
  // column otherwise; must be transient: the switch freezes and credit
  // FC backpressures losslessly until repair) and kAdapterStall
  // (a = host index; the host buffers arrivals but injects nothing).
  faults::FaultPlan fault_plan;
  chaos::MonitorConfig monitor;
};

struct TopoSimResult {
  std::string topology;      // Topology::name
  std::string flow_control;  // FcKind name
  int hosts = 0;
  int switches = 0;
  int stages = 0;
  int diameter = 0;
  double offered_load = 0.0;  // fraction of line rate (flit-normalized)
  double throughput = 0.0;    // delivered fraction of line rate
  std::uint64_t delivered = 0;  // packets in the measurement window
  double mean_delay_slots = 0.0;
  double p99_delay_slots = 0.0;
  double mean_hops = 0.0;
  // Per 1-based stage (levels for folded trees, columns otherwise):
  // peak buffer occupancy (cells, or flits in one VC lane) and mean
  // queueing wait of cells/flits forwarded by that stage.
  std::vector<int> max_occupancy_per_stage;
  std::vector<double> mean_stage_wait_slots;
  std::uint64_t buffer_overflows = 0;  // must be 0 (lossless)
  std::uint64_t out_of_order = 0;      // must be 0
  std::uint64_t injected_total = 0;    // packets, warmup included
  std::uint64_t delivered_total = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_repaired = 0;
  std::uint64_t drained_slots = 0;
  bool exactly_once_in_order = false;
  std::uint64_t invariant_violations = 0;
  std::string first_violation;  // "" when clean
};

class TopoSim {
 public:
  TopoSim(TopoSimConfig cfg, std::unique_ptr<sim::TrafficGen> traffic);

  TopoSimResult run();

  /// Incremental stepping for checkpoint/restore: advances one slot of
  /// the warmup / measurement / drain schedule; returns false when the
  /// run is complete. run() == { while (advance_slot()) {} finalize(); }.
  bool advance_slot();

  /// Assembles the result; call exactly once after advance_slot()
  /// returns false.
  TopoSimResult finalize();

  std::uint64_t current_slot() const { return now_; }
  int hosts() const { return topo_.hosts; }
  const Topology& topology() const { return topo_; }
  const chaos::InvariantMonitor& monitor() const { return monitor_; }
  const sim::Histogram& delay_histogram() const { return delay_hist_; }

  /// Structured run export with the "topology" section (stage count,
  /// diameter, VC occupancy, per-stage latency).
  telemetry::RunReport report() const;

  /// Snapshots every mutable field into "topo.*" chunks. The loader
  /// must be a TopoSim built from the identical config; structural
  /// mismatches throw ckpt::Error.
  void save_state(ckpt::Writer& w) const;
  void load_state(const ckpt::Reader& r);

 private:
  // One cell (cell kinds) or one flit of a packet (wormhole).
  struct Flit {
    int src = -1;
    int dst = -1;
    std::uint64_t seq = 0;         // per-flow packet sequence
    std::uint64_t inject_slot = 0;
    std::uint64_t enter_slot = 0;  // arrival at the current buffer
    int hops = 0;
    std::uint8_t head = 1;
    std::uint8_t tail = 1;

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, src);
      ckpt::field(a, dst);
      ckpt::field(a, seq);
      ckpt::field(a, inject_slot);
      ckpt::field(a, enter_slot);
      ckpt::field(a, hops);
      ckpt::field(a, head);
      ckpt::field(a, tail);
    }
  };
  struct Timed {
    std::uint64_t slot = 0;
    Flit flit;

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, slot);
      ckpt::field(a, flit);
    }
  };
  struct Node {
    // Cell kinds: per-switch central scheduler over VOQs.
    std::unique_ptr<sw::Scheduler> sched;  // null in wormhole mode
    std::vector<std::vector<std::deque<Flit>>> voq;  // [in][out]
    std::vector<int> input_occupancy;
    std::vector<int> out_credits;  // per out port; -1 = host egress
    std::vector<std::deque<std::uint64_t>> credit_in;  // per out port
    // Wormhole: VC lane buffers and per-lane credit bookkeeping.
    std::vector<std::deque<Flit>> lane_buf;  // [in * lanes + lane]
    std::vector<int> lane_out;      // bound out port per input lane; -1
    std::vector<int> lane_credits;  // [out * lanes + lane]; flit slots
    std::vector<int> lane_owner;    // [out * lanes + lane]; input lane
    // Per out port: (arrival slot, lane) credit returns in flight.
    std::vector<std::deque<std::pair<std::uint64_t, int>>> lane_credit_in;
    std::vector<int> out_rr;  // per out port: round-robin cursor
    // Shared: launched flits in cable flight, per out port.
    std::vector<std::deque<Timed>> out_data;
    int max_occ = 0;

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, voq);
      ckpt::field(a, input_occupancy);
      ckpt::field(a, out_credits);
      ckpt::field(a, credit_in);
      ckpt::field(a, lane_buf);
      ckpt::field(a, lane_out);
      ckpt::field(a, lane_credits);
      ckpt::field(a, lane_owner);
      ckpt::field(a, lane_credit_in);
      ckpt::field(a, out_rr);
      ckpt::field(a, out_data);
      ckpt::field(a, max_occ);
      if (sched) {
        if constexpr (Ar::kLoading)
          sched->load_state(a);
        else
          sched->save_state(a);
      }
    }
  };

  bool wormhole() const { return cfg_.fc.kind == FcKind::kWormholeVc; }
  int lane_of(int dst) const { return dst % cfg_.fc.lanes; }
  void step(std::uint64_t t, bool measuring, bool inject);
  void accept_flit(int sw, int in_port, Flit f, std::uint64_t t);
  void deliver(const Flit& f, std::uint64_t t, bool measuring);
  void transfer_cells(Node& node, int sw, std::uint64_t t, bool measuring);
  void transfer_flits(Node& node, int sw, std::uint64_t t, bool measuring);
  void credit_upstream(const Peer& up, int lane, std::uint64_t t);
  void apply_fault_transitions(std::uint64_t t);
  void check_invariants(std::uint64_t t);
  std::uint64_t backlog() const {
    return injected_total_ - delivered_total_;
  }
  template <class Ar>
  void io_core(Ar& a);
  template <class Ar>
  void io_stats(Ar& a);

  TopoSimConfig cfg_;
  Topology topo_;
  std::unique_ptr<sim::TrafficGen> traffic_;
  std::vector<Node> nodes_;
  std::uint64_t now_ = 0;
  std::uint64_t drained_slots_ = 0;

  // Host state. Cell kinds use scalar credits; wormhole uses per-lane
  // flit credits and streams the front packet one flit per slot.
  std::vector<std::deque<Flit>> host_queue_;
  std::vector<int> host_credits_;
  std::vector<int> host_lane_credits_;  // [host * lanes + lane]
  std::vector<std::deque<std::uint64_t>> host_credit_in_;
  std::vector<std::deque<std::pair<std::uint64_t, int>>> host_lane_credit_in_;
  std::vector<std::deque<Timed>> host_out_;
  std::vector<std::uint64_t> flow_seq_;

  // Mid-run fault timeline (expanded from cfg_.fault_plan; sorted).
  struct Transition {
    std::uint64_t slot = 0;
    std::uint8_t begin = 1;
    int event = -1;  // index into cfg_.fault_plan.events()
  };
  std::vector<Transition> transitions_;
  std::size_t next_transition_ = 0;
  std::vector<std::uint8_t> down_;          // per switch (mid-run freeze)
  std::vector<std::uint8_t> host_stalled_;  // per host adapter
  int open_faults_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t faults_repaired_ = 0;

  // Statistics.
  sim::Histogram delay_hist_{512.0};
  sim::MeanVar hops_;
  sim::ThroughputMeter meter_;
  sim::ReorderDetector reorder_;
  std::vector<sim::MeanVar> stage_wait_;  // per 1-based stage, index 0 unused
  std::uint64_t overflows_ = 0;
  std::uint64_t injected_total_ = 0;   // packets
  std::uint64_t delivered_total_ = 0;  // packets
  std::vector<std::uint64_t> grants_per_stage_;

  chaos::InvariantMonitor monitor_;
  int top_stage_ = 1;             // fault-stage index (see fault_plan doc)
  std::uint64_t pool_total_ = 0;  // credit/flit ledger target

  // Per-slot scratch (reset every step; never checkpointed).
  std::vector<std::uint8_t> used_input_;
  int cur_slot_max_occ_ = 0;
};

/// Builds and runs a topology under uniform Bernoulli host traffic.
/// `load` is the offered fraction of line rate; for wormhole kinds the
/// per-slot packet probability is load / flits_per_packet so the flit
/// load (and thus the throughput scale) matches the cell kinds.
TopoSimResult run_topo_uniform(const TopoSimConfig& cfg, double load,
                               std::uint64_t seed);

}  // namespace osmosis::topo
