#include "src/topo/topo_sim.hpp"

#include <algorithm>
#include <climits>
#include <sstream>

#include "src/telemetry/run_report.hpp"
#include "src/util/log.hpp"

namespace osmosis::topo {

TopoSim::TopoSim(TopoSimConfig cfg, std::unique_ptr<sim::TrafficGen> traffic)
    : cfg_(cfg),
      topo_(make_topology(cfg.topology, cfg.hosts, cfg.routing,
                          cfg.failed_switches, cfg.host_cable_slots,
                          cfg.trunk_cable_slots)),
      traffic_(std::move(traffic)) {
  OSMOSIS_REQUIRE(cfg_.buffer_cells >= 1, "buffer_cells must be >= 1");
  if (wormhole()) {
    OSMOSIS_REQUIRE(cfg_.fc.lanes >= 1 && cfg_.fc.lane_flits >= 1 &&
                        cfg_.fc.flits_per_packet >= 1,
                    "wormhole VC parameters must be >= 1");
  } else {
    OSMOSIS_REQUIRE(cfg_.scheduler == sw::SchedulerKind::kIslip ||
                        cfg_.scheduler == sw::SchedulerKind::kPim ||
                        cfg_.scheduler == sw::SchedulerKind::kTdm ||
                        cfg_.scheduler == sw::SchedulerKind::kWfa,
                    "topo stages need an immediate-issue scheduler kind");
  }
  OSMOSIS_REQUIRE(traffic_ != nullptr && traffic_->ports() == topo_.hosts,
                  "traffic generator must cover all " << topo_.hosts
                                                      << " hosts");
  const std::vector<std::string> findings = topo_.audit(1);
  OSMOSIS_REQUIRE(findings.empty(), findings.front());
  monitor_.configure(cfg_.monitor);

  const int lanes = cfg_.fc.lanes;
  int max_stage = 1;
  for (const SwitchSpec& s : topo_.switches)
    max_stage = std::max(max_stage, s.stage);
  // Mid-run plane faults aim at the top level of a folded tree, or the
  // middle column of an unfolded network.
  top_stage_ = topo_.folded ? max_stage : (topo_.stages + 1) / 2;
  stage_wait_.assign(static_cast<std::size_t>(max_stage) + 1,
                     sim::MeanVar{});
  grants_per_stage_.assign(static_cast<std::size_t>(max_stage) + 1, 0);

  nodes_.reserve(topo_.switches.size());
  std::uint64_t fc_inputs = 0;
  for (std::size_t id = 0; id < topo_.switches.size(); ++id) {
    const SwitchSpec& spec = topo_.switches[id];
    const int in_p = spec.in_ports();
    const int out_p = spec.out_ports();
    fc_inputs += static_cast<std::uint64_t>(in_p);
    Node n;
    if (wormhole()) {
      n.lane_buf.resize(static_cast<std::size_t>(in_p * lanes));
      n.lane_out.assign(static_cast<std::size_t>(in_p * lanes), -1);
      n.lane_credits.assign(static_cast<std::size_t>(out_p * lanes),
                            cfg_.fc.lane_flits);
      n.lane_owner.assign(static_cast<std::size_t>(out_p * lanes), -1);
      n.lane_credit_in.resize(static_cast<std::size_t>(out_p));
      n.out_rr.assign(static_cast<std::size_t>(out_p), 0);
    } else {
      sw::SchedulerConfig sc;
      sc.kind = cfg_.scheduler;
      sc.ports = std::max(in_p, out_p);
      sc.receivers = 1;
      sc.iterations = cfg_.scheduler_iterations;
      sc.seed = 0x7090ULL + static_cast<std::uint64_t>(id);
      n.sched = sw::make_scheduler(sc);
      n.voq.assign(static_cast<std::size_t>(in_p),
                   std::vector<std::deque<Flit>>(
                       static_cast<std::size_t>(out_p)));
      n.input_occupancy.assign(static_cast<std::size_t>(in_p), 0);
      n.out_credits.assign(static_cast<std::size_t>(out_p),
                           cfg_.buffer_cells);
      for (int p = 0; p < out_p; ++p)
        if (spec.out_peer[static_cast<std::size_t>(p)].kind ==
            PeerKind::kHost)
          n.out_credits[static_cast<std::size_t>(p)] = -1;
      n.credit_in.resize(static_cast<std::size_t>(out_p));
    }
    n.out_data.resize(static_cast<std::size_t>(out_p));
    nodes_.push_back(std::move(n));
  }
  pool_total_ =
      wormhole()
          ? fc_inputs * static_cast<std::uint64_t>(lanes) *
                static_cast<std::uint64_t>(cfg_.fc.lane_flits)
          : fc_inputs * static_cast<std::uint64_t>(cfg_.buffer_cells);

  const std::size_t hosts = static_cast<std::size_t>(topo_.hosts);
  host_queue_.resize(hosts);
  host_out_.resize(hosts);
  flow_seq_.assign(hosts * hosts, 0);
  if (wormhole()) {
    host_lane_credits_.assign(hosts * static_cast<std::size_t>(lanes),
                              cfg_.fc.lane_flits);
    host_lane_credit_in_.resize(hosts);
  } else {
    host_credits_.assign(hosts, cfg_.buffer_cells);
    host_credit_in_.resize(hosts);
  }

  // Expand the fault plan into a sorted begin/end timeline. Repairs
  // sort before injections at the same slot so back-to-back windows on
  // one switch never overlap.
  down_.assign(topo_.switches.size(), 0);
  host_stalled_.assign(hosts, 0);
  const std::vector<int> targets = topo_.stage_switches(top_stage_);
  const auto& events = cfg_.fault_plan.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const faults::FaultEvent& e = events[i];
    OSMOSIS_REQUIRE(e.kind == faults::FaultKind::kPlaneFailure ||
                        e.kind == faults::FaultKind::kAdapterStall,
                    "topo sim accepts kPlaneFailure and kAdapterStall "
                    "fault kinds, got "
                        << faults::to_string(e.kind));
    if (e.kind == faults::FaultKind::kPlaneFailure) {
      OSMOSIS_REQUIRE(e.transient(),
                      "a permanent mid-run switch fault would strand "
                      "cells; use construction-time failed_switches");
      OSMOSIS_REQUIRE(
          e.a >= 0 && e.a < static_cast<int>(targets.size()),
          "plane fault index " << e.a << " out of range (stage "
                               << top_stage_ << " has " << targets.size()
                               << " switches)");
    } else {
      OSMOSIS_REQUIRE(e.a >= 0 && e.a < topo_.hosts,
                      "adapter stall host " << e.a << " out of range");
    }
    transitions_.push_back(Transition{e.at_slot, 1, static_cast<int>(i)});
    if (e.transient())
      transitions_.push_back(
          Transition{e.end_slot(), 0, static_cast<int>(i)});
  }
  std::sort(transitions_.begin(), transitions_.end(),
            [](const Transition& x, const Transition& y) {
              if (x.slot != y.slot) return x.slot < y.slot;
              if (x.begin != y.begin) return x.begin < y.begin;
              return x.event < y.event;
            });
}

void TopoSim::apply_fault_transitions(std::uint64_t t) {
  const std::vector<int> targets = topo_.stage_switches(top_stage_);
  while (next_transition_ < transitions_.size() &&
         transitions_[next_transition_].slot <= t) {
    const Transition& tr = transitions_[next_transition_++];
    const faults::FaultEvent& e =
        cfg_.fault_plan.events()[static_cast<std::size_t>(tr.event)];
    if (e.kind == faults::FaultKind::kPlaneFailure) {
      const std::size_t sw =
          static_cast<std::size_t>(targets[static_cast<std::size_t>(e.a)]);
      down_[sw] = tr.begin;
    } else {
      host_stalled_[static_cast<std::size_t>(e.a)] = tr.begin;
    }
    if (tr.begin) {
      ++open_faults_;
      ++faults_injected_;
    } else {
      --open_faults_;
      ++faults_repaired_;
    }
  }
}

void TopoSim::credit_upstream(const Peer& up, int lane, std::uint64_t t) {
  const std::uint64_t at =
      cfg_.fc.kind == FcKind::kRelayed
          ? t
          : t + static_cast<std::uint64_t>(up.delay);
  if (up.kind == PeerKind::kHost) {
    if (wormhole())
      host_lane_credit_in_[static_cast<std::size_t>(up.id)].push_back(
          {at, lane});
    else
      host_credit_in_[static_cast<std::size_t>(up.id)].push_back(at);
  } else {
    Node& u = nodes_[static_cast<std::size_t>(up.id)];
    if (wormhole())
      u.lane_credit_in[static_cast<std::size_t>(up.port)].push_back(
          {at, lane});
    else
      u.credit_in[static_cast<std::size_t>(up.port)].push_back(at);
  }
}

void TopoSim::accept_flit(int sw, int in_port, Flit f, std::uint64_t t) {
  Node& node = nodes_[static_cast<std::size_t>(sw)];
  const SwitchSpec& spec = topo_.switches[static_cast<std::size_t>(sw)];
  ++f.hops;
  f.enter_slot = t;
  if (wormhole()) {
    const std::size_t idx = static_cast<std::size_t>(
        in_port * cfg_.fc.lanes + lane_of(f.dst));
    auto& buf = node.lane_buf[idx];
    buf.push_back(f);
    const int occ = static_cast<int>(buf.size());
    node.max_occ = std::max(node.max_occ, occ);
    cur_slot_max_occ_ = std::max(cur_slot_max_occ_, occ);
    if (occ > cfg_.fc.lane_flits) ++overflows_;
  } else {
    const int out = topo_.route_port(sw, f.dst);
    OSMOSIS_REQUIRE(out >= 0, "no route toward host "
                                  << f.dst << " at switch " << sw);
    node.voq[static_cast<std::size_t>(in_port)]
        [static_cast<std::size_t>(out)]
            .push_back(f);
    int& occ = node.input_occupancy[static_cast<std::size_t>(in_port)];
    ++occ;
    node.max_occ = std::max(node.max_occ, occ);
    cur_slot_max_occ_ = std::max(cur_slot_max_occ_, occ);
    if (occ > cfg_.buffer_cells) ++overflows_;
    node.sched->request(in_port, out);
  }
  (void)spec;
}

void TopoSim::deliver(const Flit& f, std::uint64_t t, bool measuring) {
  reorder_.deliver(f.src, f.dst, f.seq);
  const std::uint64_t flow =
      static_cast<std::uint64_t>(f.src) *
          static_cast<std::uint64_t>(topo_.hosts) +
      static_cast<std::uint64_t>(f.dst);
  monitor_.delivered(flow, f.seq);
  ++delivered_total_;
  if (measuring) {
    delay_hist_.add(static_cast<double>(t - f.inject_slot));
    hops_.add(static_cast<double>(f.hops));
    meter_.add_delivery(
        wormhole() ? static_cast<double>(cfg_.fc.flits_per_packet) : 1.0);
  }
}

void TopoSim::transfer_cells(Node& node, int sw, std::uint64_t t,
                             bool measuring) {
  const SwitchSpec& spec = topo_.switches[static_cast<std::size_t>(sw)];
  const int out_p = spec.out_ports();
  for (int p = 0; p < out_p; ++p) {
    const Peer& peer = spec.out_peer[static_cast<std::size_t>(p)];
    const bool fc = peer.kind == PeerKind::kSwitch;
    const bool frozen =
        fc && down_[static_cast<std::size_t>(peer.id)] != 0;
    if (frozen || (fc && node.out_credits[static_cast<std::size_t>(p)] == 0))
      node.sched->block_output(p);
    else
      node.sched->unblock_output(p);
  }
  for (const sw::Grant& g : node.sched->tick()) {
    auto& fifo = node.voq[static_cast<std::size_t>(g.input)]
                         [static_cast<std::size_t>(g.output)];
    OSMOSIS_REQUIRE(!fifo.empty(), "topo grant without a queued cell");
    const Flit f = fifo.front();
    fifo.pop_front();
    --node.input_occupancy[static_cast<std::size_t>(g.input)];
    if (measuring)
      stage_wait_[static_cast<std::size_t>(spec.stage)].add(
          static_cast<double>(t - f.enter_slot));
    ++grants_per_stage_[static_cast<std::size_t>(spec.stage)];

    credit_upstream(spec.in_peer[static_cast<std::size_t>(g.input)], 0, t);

    const Peer& down = spec.out_peer[static_cast<std::size_t>(g.output)];
    if (down.kind == PeerKind::kSwitch) {
      int& credits = node.out_credits[static_cast<std::size_t>(g.output)];
      OSMOSIS_REQUIRE(credits > 0, "topo grant to credit-less output");
      --credits;
    }
    node.out_data[static_cast<std::size_t>(g.output)].push_back(
        Timed{t + static_cast<std::uint64_t>(down.delay), f});
  }
}

void TopoSim::transfer_flits(Node& node, int sw, std::uint64_t t,
                             bool measuring) {
  const SwitchSpec& spec = topo_.switches[static_cast<std::size_t>(sw)];
  const int lanes = cfg_.fc.lanes;
  const int in_p = spec.in_ports();
  const int out_p = spec.out_ports();
  const int in_lanes = in_p * lanes;
  used_input_.assign(static_cast<std::size_t>(in_p), 0);
  for (int p = 0; p < out_p; ++p) {
    const Peer& peer = spec.out_peer[static_cast<std::size_t>(p)];
    if (peer.kind == PeerKind::kSwitch &&
        down_[static_cast<std::size_t>(peer.id)] != 0)
      continue;  // frozen downstream: hold the worm, credits keep it safe
    int& rr = node.out_rr[static_cast<std::size_t>(p)];
    for (int k = 0; k < in_lanes; ++k) {
      const int idx = (rr + k) % in_lanes;
      const int in = idx / lanes;
      if (used_input_[static_cast<std::size_t>(in)]) continue;
      auto& buf = node.lane_buf[static_cast<std::size_t>(idx)];
      if (buf.empty()) continue;
      const Flit f = buf.front();
      const int dlane = lane_of(f.dst);
      const std::size_t vc =
          static_cast<std::size_t>(p * lanes + dlane);
      if (node.lane_out[static_cast<std::size_t>(idx)] == -1) {
        // Head flit: route and try to allocate the downstream lane.
        OSMOSIS_REQUIRE(f.head != 0,
                        "wormhole body flit without an open route");
        if (topo_.route_port(sw, f.dst) != p) continue;
        if (peer.kind == PeerKind::kSwitch &&
            (node.lane_owner[vc] != -1 || node.lane_credits[vc] == 0))
          continue;
      } else {
        if (node.lane_out[static_cast<std::size_t>(idx)] != p) continue;
        if (peer.kind == PeerKind::kSwitch && node.lane_credits[vc] == 0)
          continue;
      }
      buf.pop_front();
      used_input_[static_cast<std::size_t>(in)] = 1;
      if (measuring)
        stage_wait_[static_cast<std::size_t>(spec.stage)].add(
            static_cast<double>(t - f.enter_slot));
      ++grants_per_stage_[static_cast<std::size_t>(spec.stage)];
      if (peer.kind == PeerKind::kSwitch) {
        --node.lane_credits[vc];
        if (f.head) node.lane_owner[vc] = idx;
        if (f.tail) node.lane_owner[vc] = -1;
      }
      if (f.head) node.lane_out[static_cast<std::size_t>(idx)] = p;
      if (f.tail) node.lane_out[static_cast<std::size_t>(idx)] = -1;
      credit_upstream(spec.in_peer[static_cast<std::size_t>(in)],
                      idx % lanes, t);
      node.out_data[static_cast<std::size_t>(p)].push_back(
          Timed{t + static_cast<std::uint64_t>(peer.delay), f});
      rr = (idx + 1) % in_lanes;
      break;  // one flit per output link per slot
    }
  }
}

void TopoSim::step(std::uint64_t t, bool measuring, bool inject) {
  cur_slot_max_occ_ = 0;
  apply_fault_transitions(t);

  // 1. Hosts generate traffic (packets; wormhole expands into flits).
  if (inject) {
    const int F = wormhole() ? cfg_.fc.flits_per_packet : 1;
    for (int h = 0; h < topo_.hosts; ++h) {
      sim::Arrival a;
      if (!traffic_->sample(h, a)) continue;
      const std::size_t flow = static_cast<std::size_t>(h) *
                                   static_cast<std::size_t>(topo_.hosts) +
                               static_cast<std::size_t>(a.dst);
      const std::uint64_t seq = flow_seq_[flow]++;
      for (int i = 0; i < F; ++i) {
        Flit f;
        f.src = h;
        f.dst = a.dst;
        f.seq = seq;
        f.inject_slot = t;
        f.head = i == 0 ? 1 : 0;
        f.tail = i == F - 1 ? 1 : 0;
        host_queue_[static_cast<std::size_t>(h)].push_back(f);
      }
      ++injected_total_;
      monitor_.offered(static_cast<std::uint64_t>(flow));
    }
  }

  // 2. Credits come home.
  if (wormhole()) {
    const int lanes = cfg_.fc.lanes;
    for (int h = 0; h < topo_.hosts; ++h) {
      auto& q = host_lane_credit_in_[static_cast<std::size_t>(h)];
      while (!q.empty() && q.front().first <= t) {
        ++host_lane_credits_[static_cast<std::size_t>(h * lanes) +
                             static_cast<std::size_t>(q.front().second)];
        q.pop_front();
      }
    }
    for (std::size_t s = 0; s < nodes_.size(); ++s) {
      Node& node = nodes_[s];
      for (std::size_t p = 0; p < node.lane_credit_in.size(); ++p) {
        auto& q = node.lane_credit_in[p];
        while (!q.empty() && q.front().first <= t) {
          node.lane_credits[p * static_cast<std::size_t>(lanes) +
                            static_cast<std::size_t>(q.front().second)]++;
          q.pop_front();
        }
      }
    }
  } else {
    for (int h = 0; h < topo_.hosts; ++h) {
      auto& q = host_credit_in_[static_cast<std::size_t>(h)];
      while (!q.empty() && q.front() <= t) {
        q.pop_front();
        ++host_credits_[static_cast<std::size_t>(h)];
      }
    }
    for (Node& node : nodes_) {
      for (std::size_t p = 0; p < node.credit_in.size(); ++p) {
        auto& q = node.credit_in[p];
        while (!q.empty() && q.front() <= t) {
          q.pop_front();
          ++node.out_credits[p];
        }
      }
    }
  }

  // 3a. Host-to-ingress cable arrivals.
  for (int h = 0; h < topo_.hosts; ++h) {
    auto& q = host_out_[static_cast<std::size_t>(h)];
    while (!q.empty() && q.front().slot <= t) {
      const Flit f = q.front().flit;
      q.pop_front();
      const HostAttach& at = topo_.inject[static_cast<std::size_t>(h)];
      accept_flit(at.sw, at.port, f, t);
    }
  }

  // 3b. Inter-switch and egress cable arrivals.
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    Node& node = nodes_[s];
    const SwitchSpec& spec = topo_.switches[s];
    for (std::size_t p = 0; p < node.out_data.size(); ++p) {
      auto& q = node.out_data[p];
      while (!q.empty() && q.front().slot <= t) {
        const Flit f = q.front().flit;
        q.pop_front();
        const Peer& peer = spec.out_peer[p];
        if (peer.kind == PeerKind::kHost) {
          if (f.tail) deliver(f, t, measuring);
        } else {
          accept_flit(peer.id, peer.port, f, t);
        }
      }
    }
  }

  // 4. Host injection, gated by ingress buffer credits.
  for (int h = 0; h < topo_.hosts; ++h) {
    if (host_stalled_[static_cast<std::size_t>(h)]) continue;
    auto& q = host_queue_[static_cast<std::size_t>(h)];
    if (q.empty()) continue;
    const Flit& f = q.front();
    if (wormhole()) {
      int& credits =
          host_lane_credits_[static_cast<std::size_t>(
                                 h * cfg_.fc.lanes) +
                             static_cast<std::size_t>(lane_of(f.dst))];
      if (credits == 0) continue;
      --credits;
    } else {
      int& credits = host_credits_[static_cast<std::size_t>(h)];
      if (credits == 0) continue;
      --credits;
    }
    host_out_[static_cast<std::size_t>(h)].push_back(
        Timed{t + static_cast<std::uint64_t>(cfg_.host_cable_slots),
              f});
    q.pop_front();
  }

  // 5. Per-switch transfer: central-scheduler grants (cell kinds) or
  // round-robin flit arbitration (wormhole).
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    if (topo_.dead(static_cast<int>(s))) continue;
    if (down_[s]) continue;  // frozen: holds every resident cell/flit
    if (wormhole())
      transfer_flits(nodes_[s], static_cast<int>(s), t, measuring);
    else
      transfer_cells(nodes_[s], static_cast<int>(s), t, measuring);
  }

  check_invariants(t);
}

void TopoSim::check_invariants(std::uint64_t t) {
  monitor_.check_generated(t, injected_total_);

  std::uint64_t ledger = 0;
  long long min_pool = LLONG_MAX;
  if (wormhole()) {
    for (std::size_t i = 0; i < host_lane_credits_.size(); ++i) {
      ledger += static_cast<std::uint64_t>(host_lane_credits_[i]);
      min_pool = std::min(
          min_pool, static_cast<long long>(host_lane_credits_[i]));
    }
    for (const auto& q : host_lane_credit_in_) ledger += q.size();
  } else {
    for (std::size_t i = 0; i < host_credits_.size(); ++i) {
      ledger += static_cast<std::uint64_t>(host_credits_[i]);
      min_pool =
          std::min(min_pool, static_cast<long long>(host_credits_[i]));
    }
    for (const auto& q : host_credit_in_) ledger += q.size();
  }
  for (const auto& q : host_out_) ledger += q.size();
  const int lanes = cfg_.fc.lanes;
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    const Node& node = nodes_[s];
    const SwitchSpec& spec = topo_.switches[s];
    if (wormhole()) {
      for (const auto& buf : node.lane_buf) ledger += buf.size();
    } else {
      for (const int occ : node.input_occupancy)
        ledger += static_cast<std::uint64_t>(occ);
    }
    for (int p = 0; p < spec.out_ports(); ++p) {
      if (spec.out_peer[static_cast<std::size_t>(p)].kind !=
          PeerKind::kSwitch)
        continue;
      if (wormhole()) {
        for (int l = 0; l < lanes; ++l) {
          const int c =
              node.lane_credits[static_cast<std::size_t>(p * lanes + l)];
          ledger += static_cast<std::uint64_t>(c);
          min_pool = std::min(min_pool, static_cast<long long>(c));
        }
        ledger += node.lane_credit_in[static_cast<std::size_t>(p)].size();
      } else {
        const int c = node.out_credits[static_cast<std::size_t>(p)];
        ledger += static_cast<std::uint64_t>(c);
        min_pool = std::min(min_pool, static_cast<long long>(c));
        ledger += node.credit_in[static_cast<std::size_t>(p)].size();
      }
      ledger += node.out_data[static_cast<std::size_t>(p)].size();
    }
  }
  monitor_.check_credits(t, ledger, pool_total_,
                         min_pool == LLONG_MAX ? 0 : min_pool);
  monitor_.check_occupancy(
      t, "topo input buffer",
      static_cast<std::uint64_t>(cur_slot_max_occ_),
      static_cast<std::uint64_t>(wormhole() ? cfg_.fc.lane_flits
                                            : cfg_.buffer_cells));

  chaos::InvariantMonitor::SlotState ss;
  ss.slot = t;
  ss.queued = backlog();
  ss.active_faults = open_faults_;
  ss.retries_pending = 0;
  monitor_.end_slot(ss);
}

bool TopoSim::advance_slot() {
  const std::uint64_t warm = cfg_.warmup_slots;
  const std::uint64_t meas = cfg_.measure_slots;
  if (now_ < warm) {
    step(now_, false, true);
  } else if (now_ < warm + meas) {
    step(now_, true, true);
    meter_.advance_slots(1, static_cast<std::uint64_t>(topo_.hosts));
  } else if (cfg_.drain_max_slots > 0 &&
             drained_slots_ < cfg_.drain_max_slots && backlog() > 0) {
    step(now_, false, false);
    ++drained_slots_;
  } else {
    return false;
  }
  ++now_;
  return true;
}

TopoSimResult TopoSim::finalize() {
  monitor_.finish(now_, backlog());

  TopoSimResult r;
  r.topology = topo_.name;
  r.flow_control = to_string(cfg_.fc.kind);
  r.hosts = topo_.hosts;
  r.switches = topo_.switch_count();
  r.stages = topo_.stages;
  r.diameter = topo_.diameter;
  r.offered_load =
      traffic_->offered_load() *
      (wormhole() ? static_cast<double>(cfg_.fc.flits_per_packet) : 1.0);
  r.throughput = meter_.utilization();
  r.delivered = delay_hist_.count();
  r.mean_delay_slots = delay_hist_.mean();
  r.p99_delay_slots = delay_hist_.p99();
  r.mean_hops = hops_.mean();
  const std::size_t max_stage = stage_wait_.size() - 1;
  r.max_occupancy_per_stage.assign(max_stage, 0);
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    int& slot = r.max_occupancy_per_stage[static_cast<std::size_t>(
        topo_.switches[s].stage - 1)];
    slot = std::max(slot, nodes_[s].max_occ);
  }
  r.mean_stage_wait_slots.assign(max_stage, 0.0);
  for (std::size_t st = 1; st <= max_stage; ++st)
    r.mean_stage_wait_slots[st - 1] = stage_wait_[st].mean();
  r.buffer_overflows = overflows_;
  r.out_of_order = reorder_.out_of_order();
  r.injected_total = injected_total_;
  r.delivered_total = delivered_total_;
  r.faults_injected = faults_injected_;
  r.faults_repaired = faults_repaired_;
  r.drained_slots = drained_slots_;
  r.invariant_violations = monitor_.violations();
  r.first_violation = monitor_.first_violation();
  r.exactly_once_in_order = monitor_.ok() && r.out_of_order == 0;
  return r;
}

TopoSimResult TopoSim::run() {
  while (advance_slot()) {
  }
  return finalize();
}

telemetry::RunReport TopoSim::report() const {
  telemetry::RunReport r;
  r.sim = "TopoSim";
  r.time_unit = "cycles";
  r.config["hosts"] = static_cast<double>(topo_.hosts);
  r.config["host_cable_slots"] = static_cast<double>(cfg_.host_cable_slots);
  r.config["trunk_cable_slots"] =
      static_cast<double>(cfg_.trunk_cable_slots);
  r.config["warmup_slots"] = static_cast<double>(cfg_.warmup_slots);
  r.config["measure_slots"] = static_cast<double>(cfg_.measure_slots);
  r.config["drain_max_slots"] = static_cast<double>(cfg_.drain_max_slots);
  if (wormhole()) {
    r.config["vc_lanes"] = static_cast<double>(cfg_.fc.lanes);
    r.config["vc_lane_flits"] = static_cast<double>(cfg_.fc.lane_flits);
    r.config["flits_per_packet"] =
        static_cast<double>(cfg_.fc.flits_per_packet);
  } else {
    r.config["buffer_cells"] = static_cast<double>(cfg_.buffer_cells);
  }
  r.info["topology"] = topo_.name;
  r.info["topology_kind"] = to_string(topo_.kind);
  r.info["flow_control"] = to_string(cfg_.fc.kind);
  r.info["routing"] = to_string(topo_.routing);
  r.info["scheduler"] =
      wormhole() ? std::string("wormhole-rr") : nodes_.front().sched->name();
  r.counters["topo.injected"] = static_cast<double>(injected_total_);
  r.counters["topo.delivered"] = static_cast<double>(delivered_total_);
  r.counters["topo.overflows"] = static_cast<double>(overflows_);
  for (std::size_t st = 1; st < grants_per_stage_.size(); ++st) {
    std::ostringstream key;
    key << "stage." << st << ".grants";
    r.counters[key.str()] =
        static_cast<double>(grants_per_stage_[st]);
  }
  r.histograms["delay"] = telemetry::HistogramSummary::of(delay_hist_);

  r.topology["stages"] = static_cast<double>(topo_.stages);
  r.topology["diameter"] = static_cast<double>(topo_.diameter);
  r.topology["switches"] = static_cast<double>(topo_.switch_count());
  r.topology["hosts"] = static_cast<double>(topo_.hosts);
  for (const auto& kv : topo_.params) r.topology[kv.first] = kv.second;
  if (wormhole()) r.topology["vc_lanes"] = static_cast<double>(cfg_.fc.lanes);
  int occ_max = 0;
  for (const Node& node : nodes_) occ_max = std::max(occ_max, node.max_occ);
  r.topology["vc_occupancy_max"] = static_cast<double>(occ_max);
  for (std::size_t st = 1; st < stage_wait_.size(); ++st) {
    std::ostringstream base;
    base << "stage." << st << ".";
    r.topology[base.str() + "wait_mean"] = stage_wait_[st].mean();
    int occ = 0;
    for (std::size_t s = 0; s < nodes_.size(); ++s)
      if (topo_.switches[s].stage == static_cast<int>(st))
        occ = std::max(occ, nodes_[s].max_occ);
    r.topology[base.str() + "occ_max"] = static_cast<double>(occ);
  }
  monitor_.to_report(r);
  return r;
}

template <class Ar>
void TopoSim::io_core(Ar& a) {
  ckpt::field(a, now_);
  ckpt::field(a, drained_slots_);
  ckpt::field(a, host_queue_);
  ckpt::field(a, host_credits_);
  ckpt::field(a, host_lane_credits_);
  ckpt::field(a, host_credit_in_);
  ckpt::field(a, host_lane_credit_in_);
  ckpt::field(a, host_out_);
  ckpt::field(a, flow_seq_);
  std::uint64_t cursor = next_transition_;
  ckpt::field(a, cursor);
  if constexpr (Ar::kLoading) {
    if (cursor > transitions_.size())
      throw ckpt::Error("topo fault cursor out of range in checkpoint");
    next_transition_ = static_cast<std::size_t>(cursor);
  }
  ckpt::field(a, down_);
  ckpt::field(a, host_stalled_);
  ckpt::field(a, open_faults_);
  ckpt::field(a, faults_injected_);
  ckpt::field(a, faults_repaired_);
  ckpt::field(a, injected_total_);
  ckpt::field(a, delivered_total_);
  ckpt::field(a, overflows_);
  ckpt::field(a, grants_per_stage_);
}

template <class Ar>
void TopoSim::io_stats(Ar& a) {
  ckpt::field(a, delay_hist_);
  ckpt::field(a, hops_);
  ckpt::field(a, meter_);
  ckpt::field(a, reorder_);
  ckpt::field(a, stage_wait_);
  ckpt::field(a, monitor_);
}

void TopoSim::save_state(ckpt::Writer& w) const {
  TopoSim* self = const_cast<TopoSim*>(this);
  ckpt::write_chunk(w, "topo.core",
                    [&](ckpt::Sink& s) { self->io_core(s); });
  ckpt::write_chunk(w, "topo.switches", [&](ckpt::Sink& s) {
    for (Node& node : self->nodes_) node.io_state(s);
  });
  ckpt::write_chunk(w, "topo.traffic",
                    [&](ckpt::Sink& s) { traffic_->save_state(s); });
  ckpt::write_chunk(w, "topo.stats",
                    [&](ckpt::Sink& s) { self->io_stats(s); });
}

void TopoSim::load_state(const ckpt::Reader& r) {
  ckpt::read_chunk(r, "topo.core",
                   [&](ckpt::Source& s) { io_core(s); });
  ckpt::read_chunk(r, "topo.switches", [&](ckpt::Source& s) {
    for (Node& node : nodes_) node.io_state(s);
  });
  ckpt::read_chunk(r, "topo.traffic",
                   [&](ckpt::Source& s) { traffic_->load_state(s); });
  ckpt::read_chunk(r, "topo.stats",
                   [&](ckpt::Source& s) { io_stats(s); });
}

TopoSimResult run_topo_uniform(const TopoSimConfig& cfg, double load,
                               std::uint64_t seed) {
  double p = load;
  if (cfg.fc.kind == FcKind::kWormholeVc)
    p = load / static_cast<double>(cfg.fc.flits_per_packet);
  TopoSim sim(cfg, sim::make_uniform(cfg.hosts, p, seed));
  return sim.run();
}

}  // namespace osmosis::topo
