#include "src/topo/min_route.hpp"

#include <algorithm>
#include <cstdint>

namespace osmosis::topo {
namespace {

bool is_permutation(int n, const std::vector<int>& perm) {
  if (static_cast<int>(perm.size()) != n) return false;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  for (const int d : perm) {
    if (d < 0 || d >= n || seen[static_cast<std::size_t>(d)]) return false;
    seen[static_cast<std::size_t>(d)] = 1;
  }
  return true;
}

}  // namespace

BenesRoute benes_loop_route(int hosts, const std::vector<int>& perm) {
  BenesRoute result;
  if (hosts < 2 || (hosts & (hosts - 1)) != 0 || !is_permutation(hosts, perm))
    return result;

  int k = 0;
  while ((1 << k) < hosts) ++k;
  const int columns = 2 * k - 1;
  result.lines.assign(
      static_cast<std::size_t>(hosts),
      std::vector<int>(static_cast<std::size_t>(columns + 1), -1));

  // Explicit-stack recursion over subnetworks. A frame is one Benes of
  // size 2^k_lvl spanning the lines whose high bits equal `prefix` and
  // the global columns col_lo .. col_lo + 2*k_lvl - 2 (subnetworks of
  // the same level share columns, which is exactly how make_benes lays
  // the fundamental arrangements out).
  struct Frame {
    int k_lvl;
    int col_lo;
    int prefix;
    std::vector<int> flow;  // global flow id per sub-input line
    std::vector<int> out;   // sub-output line per sub-input line
  };

  std::vector<Frame> stack;
  {
    Frame top;
    top.k_lvl = k;
    top.col_lo = 0;
    top.prefix = 0;
    top.flow.resize(static_cast<std::size_t>(hosts));
    top.out.resize(static_cast<std::size_t>(hosts));
    for (int i = 0; i < hosts; ++i) {
      top.flow[static_cast<std::size_t>(i)] = i;
      top.out[static_cast<std::size_t>(i)] = perm[static_cast<std::size_t>(i)];
    }
    stack.push_back(std::move(top));
  }

  while (!stack.empty()) {
    Frame fr = std::move(stack.back());
    stack.pop_back();
    const int n = 1 << fr.k_lvl;
    const int half = n / 2;

    if (n == 2) {
      // Lone 2x2 switch: one column, exchange set by the permutation.
      for (int i = 0; i < 2; ++i) {
        const int f = fr.flow[static_cast<std::size_t>(i)];
        result.lines[static_cast<std::size_t>(f)]
                    [static_cast<std::size_t>(fr.col_lo)] = fr.prefix | i;
        result.lines[static_cast<std::size_t>(f)]
                    [static_cast<std::size_t>(fr.col_lo + 1)] =
            fr.prefix | fr.out[static_cast<std::size_t>(i)];
      }
      continue;
    }

    // Looping step: input partners (i, i^half) must take different
    // subnetworks, and so must the flows of output partners (o,
    // o^half). The constraint cycles alternate input- and output-
    // partner edges, hence have even length, so the walk 2-colors them
    // without ever contradicting an earlier assignment.
    std::vector<int> inv(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      inv[static_cast<std::size_t>(fr.out[static_cast<std::size_t>(i)])] = i;
    std::vector<signed char> sub(static_cast<std::size_t>(n), -1);
    for (int start = 0; start < n; ++start) {
      int i = start;
      while (sub[static_cast<std::size_t>(i)] == -1) {
        sub[static_cast<std::size_t>(i)] = 0;
        const int j = i ^ half;
        sub[static_cast<std::size_t>(j)] = 1;
        // j's output partner belongs to the opposite subnetwork of j,
        // i.e. subnetwork 0: it is the next walk head.
        i = inv[static_cast<std::size_t>(fr.out[static_cast<std::size_t>(j)] ^
                                         half)];
      }
    }

    // Record the outer-column lines this level decides, then split the
    // middle 2*(k_lvl-1)-1 columns into the two half-size Benes.
    const int col_last = fr.col_lo + 2 * fr.k_lvl - 2;
    Frame lower, upper;
    for (Frame* sf : {&lower, &upper}) {
      sf->k_lvl = fr.k_lvl - 1;
      sf->col_lo = fr.col_lo + 1;
      sf->flow.resize(static_cast<std::size_t>(half));
      sf->out.resize(static_cast<std::size_t>(half));
    }
    lower.prefix = fr.prefix;
    upper.prefix = fr.prefix | half;
    for (int i = 0; i < n; ++i) {
      const int f = fr.flow[static_cast<std::size_t>(i)];
      const int s = sub[static_cast<std::size_t>(i)];
      const int o = fr.out[static_cast<std::size_t>(i)];
      result.lines[static_cast<std::size_t>(f)]
                  [static_cast<std::size_t>(fr.col_lo)] = fr.prefix | i;
      result.lines[static_cast<std::size_t>(f)]
                  [static_cast<std::size_t>(col_last + 1)] = fr.prefix | o;
      Frame& sf = s == 0 ? lower : upper;
      sf.flow[static_cast<std::size_t>(i & (half - 1))] = f;
      sf.out[static_cast<std::size_t>(i & (half - 1))] = o & (half - 1);
    }
    stack.push_back(std::move(lower));
    stack.push_back(std::move(upper));
  }

  result.ok = true;
  return result;
}

bool omega_admits(int hosts, const std::vector<int>& perm) {
  if (hosts < 4 || (hosts & (hosts - 1)) != 0 || !is_permutation(hosts, perm))
    return false;
  int k = 0;
  while ((1 << k) < hosts) ++k;
  const auto shuffle = [&](int l) {
    return ((l << 1) | (l >> (k - 1))) & (hosts - 1);
  };
  std::vector<int> pos(static_cast<std::size_t>(hosts));
  for (int f = 0; f < hosts; ++f)
    pos[static_cast<std::size_t>(f)] = shuffle(f);
  std::vector<std::uint8_t> taken(static_cast<std::size_t>(hosts));
  for (int c = 0; c < k; ++c) {
    std::fill(taken.begin(), taken.end(), 0);
    for (int f = 0; f < hosts; ++f) {
      const int sw = pos[static_cast<std::size_t>(f)] / 2;
      const int q = (perm[static_cast<std::size_t>(f)] >> (k - 1 - c)) & 1;
      const int out = 2 * sw + q;
      if (taken[static_cast<std::size_t>(out)]) return false;
      taken[static_cast<std::size_t>(out)] = 1;
      pos[static_cast<std::size_t>(f)] = c == k - 1 ? out : shuffle(out);
    }
  }
  return true;
}

}  // namespace osmosis::topo
