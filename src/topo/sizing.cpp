#include "src/topo/sizing.hpp"

#include <sstream>

#include "src/util/log.hpp"
#include "src/util/units.hpp"

namespace osmosis::topo {

FatTreeSizing size_fat_tree(int radix, std::uint64_t min_ports) {
  OSMOSIS_REQUIRE(radix >= 2 && radix % 2 == 0,
                  "fat-tree radix must be even and >= 2, got " << radix);
  OSMOSIS_REQUIRE(min_ports >= 1, "need at least one endpoint");

  const std::uint64_t m = static_cast<std::uint64_t>(radix) / 2;
  FatTreeSizing s;
  s.radix = radix;
  s.levels = 1;
  s.endpoint_ports = static_cast<std::uint64_t>(radix);
  while (s.endpoint_ports < min_ports) {
    ++s.levels;
    s.endpoint_ports = static_cast<std::uint64_t>(radix) *
                       util::ipow(m, static_cast<unsigned>(s.levels - 1));
    OSMOSIS_REQUIRE(s.levels <= 12, "fat tree blew past 12 levels; radix "
                                        << radix << " cannot realistically"
                                           " serve "
                                        << min_ports << " ports");
  }
  s.path_stages = 2 * s.levels - 1;

  // Folded-Clos switch counts: every level except the top has
  // endpoints/m switches (m down-ports each... leaf switches use m ports
  // for hosts and m up; the top level has endpoints/radix switches with
  // all `radix` ports facing down.
  for (int l = 1; l < s.levels; ++l)
    s.switches_per_level.push_back(s.endpoint_ports / m);
  s.switches_per_level.push_back(s.endpoint_ports /
                                 static_cast<std::uint64_t>(radix));
  for (auto c : s.switches_per_level) s.switches_total += c;

  s.host_cables = s.endpoint_ports;
  s.interswitch_cables =
      static_cast<std::uint64_t>(s.levels - 1) * s.endpoint_ports;
  s.oeo_pairs_per_path = static_cast<std::uint64_t>(s.path_stages);
  return s;
}

int cable_hops(const FatTreeSizing& s) { return s.path_stages + 1; }

double path_latency_ns(const FatTreeSizing& s, double per_stage_ns,
                       double cable_ns_per_hop) {
  OSMOSIS_REQUIRE(per_stage_ns >= 0.0 && cable_ns_per_hop >= 0.0,
                  "latencies cannot be negative");
  return static_cast<double>(s.path_stages) * per_stage_ns +
         static_cast<double>(cable_hops(s)) * cable_ns_per_hop;
}

std::string FatTreeSizing::to_string() const {
  std::ostringstream oss;
  oss << "fat tree radix " << radix << ": " << levels << " level(s), "
      << path_stages << " stage(s), " << endpoint_ports << " ports, "
      << switches_total << " switches, "
      << host_cables + interswitch_cables << " cables";
  return oss.str();
}

}  // namespace osmosis::topo
