#pragma once
// Analytic fat-tree (folded-Clos) sizing, the arithmetic behind §VI.C:
// a 2048-port fabric takes 3 stages of 64-port OSMOSIS switches, 5
// stages of 32-port high-end electronic switches, or 9 stages of 8-12
// port commodity parts — and every stage adds latency, power and OEO
// conversions.
//
// Conventions: switches have `radix` ports; inner levels split them half
// down / half up (m = radix/2). An L-level fat tree supports
// radix * m^(L-1) endpoints; a worst-case path traverses 2L-1 switches
// ("stages" in the paper's counting: the two-level tree is the
// three-stage fabric of §V).
//
// Lives in src/topo/ beside the graph generators (topology.hpp): this
// header answers "how big", make_fat_tree() answers "which wires".

#include <cstdint>
#include <string>
#include <vector>

namespace osmosis::topo {

struct FatTreeSizing {
  int radix = 0;
  int levels = 0;                 // L
  int path_stages = 0;            // 2L-1 worst-case switch traversals
  std::uint64_t endpoint_ports = 0;  // radix * (radix/2)^(L-1)
  std::uint64_t switches_total = 0;  // (2L-1) * endpoints / radix
  std::vector<std::uint64_t> switches_per_level;  // leaf first
  std::uint64_t host_cables = 0;        // endpoint links
  std::uint64_t interswitch_cables = 0; // (L-1) * endpoints
  std::uint64_t oeo_pairs_per_path = 0; // one O/E+E/O pair per stage (opt. 3)

  std::string to_string() const;
};

/// Smallest fat tree of `radix`-port switches with at least `min_ports`
/// endpoints. radix must be even and >= 2.
FatTreeSizing size_fat_tree(int radix, std::uint64_t min_ports);

/// Worst-case fabric traversal latency: `per_stage_ns` per switch stage
/// plus `cable_ns` per cable hop (2(L-1) inter-switch hops + 2 host
/// links on the worst-case path... the paper budgets total cabling, so
/// we charge `cable_hops()` hops).
double path_latency_ns(const FatTreeSizing& s, double per_stage_ns,
                       double cable_ns_per_hop);

/// Cable hops on a worst-case path: host link in, (stages-1) inter-switch
/// hops, host link out.
int cable_hops(const FatTreeSizing& s);

}  // namespace osmosis::topo
