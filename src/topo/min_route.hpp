#pragma once
// Permutation routability of the MIN generators (offline analysis; the
// slot-level simulators never call this).
//
//  * benes_loop_route: the classical looping algorithm proving the
//    Benes network rearrangeable — input partners (i, i + N/2) must use
//    different subnetworks, output partners likewise, and the induced
//    constraint graph is a union of even cycles, so a 2-coloring always
//    exists. Recursing gives conflict-free switch settings for ANY
//    permutation.
//  * omega_admits: destination-tag simulation of an Omega pass. Paths
//    are unique, so a port conflict cannot be routed around: the
//    permutation is simply blocked.

#include <vector>

namespace osmosis::topo {

struct BenesRoute {
  bool ok = false;
  // lines[f][c] = line that the flow entering at input f occupies at
  // the INPUT of column c (c = 0..2k-2); lines[f][2k-1] is the output
  // line, == perm[f]. Link-disjointness = per-column line sets are
  // permutations; realizability = consecutive lines differ only in the
  // column's exchange bit.
  std::vector<std::vector<int>> lines;
};

/// Routes `perm` (perm[src] = dst, a permutation of 0..hosts-1) through
/// the Benes(hosts) of make_benes() via the looping algorithm.
/// `hosts` must be a power of two >= 2. ok == false only when `perm` is
/// not a permutation — a valid permutation always routes.
BenesRoute benes_loop_route(int hosts, const std::vector<int>& perm);

/// True when the Omega network of `hosts` ports passes `perm` without
/// internal output-port conflicts under destination-tag routing.
bool omega_admits(int hosts, const std::vector<int>& perm);

}  // namespace osmosis::topo
