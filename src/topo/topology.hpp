#pragma once
// Topology zoo for the §VI.C multistage scaling argument: one common
// stage/link-graph representation covering
//
//  * folded-Clos k-ary fat trees (the FT' recursion the fabric
//    simulators wire; bidirectional ports, up/down routing),
//  * three-stage Clos(m,n,r) in Dally notation (r ingress switches of
//    n hosts + m uplinks, m middle r x r switches, r egress switches),
//  * Omega / Banyan / Benes multistage interconnection networks built
//    from the fundamental 2x2 arrangement (Gur & Zalevsky, PAPERS.md):
//    log2(N) shuffle-exchange or butterfly columns, and the
//    rearrangeable 2*log2(N)-1 column Benes from a butterfly mirrored
//    onto itself.
//
// A Topology is pure data: per-switch peer tables (who feeds each input
// port, where each output port leads), a per-hop routing function, host
// attach points for injection and delivery, and a connectivity + fault
// audit that walks every routed (src, dst) path. The cell/flit
// simulators (fabric_sim, clos_sim, topo_sim) consume this instead of
// wiring arithmetic of their own.
//
// Conventions shared with the fabric simulators: folded topologies use
// ONE port table (a port is both an input and an output; in_peer ==
// out_peer); unidirectional MINs and Clos(m,n,r) keep distinct input
// and output sides. Routing is static per (switch, destination) so
// per-flow cell order is preserved by construction.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace osmosis::topo {

enum class TopoKind : std::uint8_t {
  kFatTree = 0,  // folded Clos, radix-port switches, L levels
  kClos = 1,     // three-stage Clos(m,n,r), unfolded
  kOmega = 2,    // log2(N) shuffle-exchange columns, unique path
  kBanyan = 3,   // log2(N) butterfly columns, unique path
  kBenes = 4,    // 2*log2(N)-1 columns, rearrangeably non-blocking
};

const char* to_string(TopoKind kind);
/// Inverse of to_string; aborts (OSMOSIS_REQUIRE) on an unknown name.
TopoKind topo_kind_from_string(const std::string& name);

enum class RouteKind : std::uint8_t {
  // Static destination-digit choice at every free stage (d-mod-k): the
  // scheme the fabric simulators ship, reproduced exactly.
  kDestMod = 0,
  // Static per-(switch, destination) hash at free stages: spreads the
  // same destination over different middles at different switches.
  // Still deterministic, so per-flow order holds.
  kHashSpread = 1,
};

const char* to_string(RouteKind kind);
RouteKind route_kind_from_string(const std::string& name);

enum class PeerKind : std::uint8_t { kNone = 0, kHost = 1, kSwitch = 2 };

/// One end of a link: a host adapter or (switch, port), plus the cable
/// flight time in slots.
struct Peer {
  PeerKind kind = PeerKind::kNone;
  int id = -1;    // host index or switch index
  int port = -1;  // peer's port (switches only; -1 for hosts)
  int delay = 1;  // cable slots
};

/// Destination interval [lo, hi) reachable through `port` going down
/// (folded topologies only; generator scratch kept for diagnostics).
struct DownRange {
  int lo = 0;
  int hi = 0;
  int port = -1;
};

struct SwitchSpec {
  // 1-based level for folded trees (1 = leaf); 1-based column for
  // unidirectional networks (1 = ingress column).
  int stage = 1;
  std::vector<Peer> in_peer;   // feeder of each input port
  std::vector<Peer> out_peer;  // destination of each output port
  // Folded topologies only: static route table (dst -> out port, -1
  // when a failure set leaves dst unreachable or the switch is dead).
  std::vector<int> route;
  std::vector<DownRange> down_ranges;
  std::vector<int> up_ports;

  int in_ports() const { return static_cast<int>(in_peer.size()); }
  int out_ports() const { return static_cast<int>(out_peer.size()); }
};

/// Host h injects at (sw, port) / receives from (sw, port).
struct HostAttach {
  int sw = -1;
  int port = -1;
};

/// Canonical shape for `hosts` attached endpoints, derived by
/// derive_shape(): which generator parameters realize the port count,
/// or why none do (message names the nearest valid counts, satisfying
/// the "(m,n,r) / k-vs-port-count" error contract).
struct Shape {
  bool ok = false;
  std::string error;  // set when !ok
  // Fat tree:
  int radix = 0;
  int levels = 0;
  // Clos(m,n,r):
  int m = 0, n = 0, r = 0;
  // MINs:
  int log2_hosts = 0;
};

Shape derive_shape(TopoKind kind, int hosts);

struct Topology {
  TopoKind kind = TopoKind::kFatTree;
  RouteKind routing = RouteKind::kDestMod;
  std::string name;    // e.g. "fat_tree(r8,L2)", "clos(m4,n4,r8)"
  bool folded = false; // bidirectional ports (fat tree) or one-way MIN
  int hosts = 0;
  int stages = 0;      // switch columns a worst-case path traverses
  int diameter = 0;    // worst-case switch hops (== stages when unfolded)
  int host_delay = 1;
  int trunk_delay = 4;
  std::vector<SwitchSpec> switches;
  std::vector<HostAttach> inject;
  std::vector<HostAttach> deliver;
  // Construction-time permanent faults, routed around where path
  // diversity exists (fat-tree non-leaf switches, Clos middles).
  std::vector<std::uint8_t> failed;
  std::map<std::string, double> params;  // for RunReport "topology"

  int switch_count() const { return static_cast<int>(switches.size()); }
  bool dead(int sw) const { return failed[static_cast<std::size_t>(sw)] != 0; }

  /// Out port carrying `dst` at switch `sw`; -1 when unreachable.
  /// Folded kinds read the precomputed table; MINs and Clos answer in
  /// closed form (destination-tag / destination-digit).
  int route_port(int sw, int dst) const;

  /// Walks every (src, dst) routed path: each must terminate at host
  /// `dst` within the hop bound without crossing a dead switch.
  /// Returns human-readable findings (empty == connected); stops after
  /// `max_findings` so a dark fabric doesn't report hosts^2 lines.
  std::vector<std::string> audit(std::size_t max_findings = 8) const;

  /// Switch ids of the given 1-based stage, in id order (used to aim
  /// fault plans at "spine 0" regardless of topology).
  std::vector<int> stage_switches(int stage) const;
};

struct FatTreeParams {
  int radix = 8;
  int levels = 2;
  int host_delay = 1;
  int trunk_delay = 4;
  RouteKind routing = RouteKind::kDestMod;
  std::vector<int> failed_switches;
};

/// The FT' recursion the fabric simulators wire (DESIGN.md §9):
/// FT'(1) = one switch, m hosts down + m uplinks; FT'(l) = m pods of
/// FT'(l-1) under m^(l-1) level-l switches; the machine = radix pods of
/// FT'(L-1) under m^(L-1) top switches with every port facing down.
/// Switch ids: pods (recursively, leaf-first) then their tops, so a
/// two-level tree numbers leaves 0..radix-1 and spines radix..radix+m-1
/// exactly like FabricSim.
Topology make_fat_tree(const FatTreeParams& p);

struct ClosParams {
  int m = 4;  // middle switches
  int n = 4;  // hosts per ingress/egress switch
  int r = 4;  // ingress (= egress) switches
  int host_delay = 1;
  int trunk_delay = 4;
  RouteKind routing = RouteKind::kDestMod;
  std::vector<int> failed_middles;  // middle-stage indices 0..m-1
};

/// Unfolded three-stage Clos(m,n,r) in Dally notation. Stage 1: r
/// ingress switches (n host inputs, m middle uplinks). Stage 2: m
/// middle r x r switches. Stage 3: r egress switches (m inputs, n host
/// outputs). n*r hosts; rearrangeably non-blocking at m >= n.
Topology make_clos(const ClosParams& p);

struct MinParams {
  int hosts = 16;  // power of two >= 4
  int host_delay = 1;
  int trunk_delay = 4;
  RouteKind routing = RouteKind::kDestMod;
};

/// Omega: k = log2(N) columns of N/2 2x2 switches with a perfect
/// shuffle in front of every column; unique path, destination-tag
/// routed, blocking (see min_route.hpp for the admission check).
Topology make_omega(const MinParams& p);

/// Banyan (butterfly): k columns, column s pairs lines differing in bit
/// k-1-s; unique path, destination-tag routed.
Topology make_banyan(const MinParams& p);

/// Benes: 2k-1 columns — a butterfly (bits k-1..1), the bit-0 column,
/// and the mirrored butterfly (bits 1..k-1). Rearrangeably
/// non-blocking (min_route.hpp proves it by the looping algorithm);
/// statically routed here: free choice in the first k-1 columns,
/// destination-tag self-routing from the middle column on.
Topology make_benes(const MinParams& p);

/// Canonical-shape dispatcher for campaign/chaos axes: derives the
/// generator parameters for `hosts` endpoints via derive_shape() and
/// builds the topology. Aborts (OSMOSIS_REQUIRE) when no shape exists;
/// validate first with mgmt::validate_topology for a soft error.
Topology make_topology(TopoKind kind, int hosts,
                       RouteKind routing = RouteKind::kDestMod,
                       const std::vector<int>& failed_switches = {},
                       int host_delay = 1, int trunk_delay = 4);

}  // namespace osmosis::topo
