#pragma once
// Power and scaling models behind the paper's economic argument (§I,
// §VI.C, §VII):
//  * CMOS switch power is proportional to the clock — i.e. the data —
//    rate: every bit moved through the chip costs switching energy.
//  * Optical switch *element* power (SOA bias, amplifiers) is
//    independent of the data rate; only the control function scales, and
//    with the packet rate rather than the bit rate.
//  * Fabric level: every stage adds switches, OEO conversions and
//    cables; OSMOSIS needs 3 stages for 2048 ports where electronics
//    needs 5 (high-end 32-port) or 9 (commodity 8-12 port).

#include <string>
#include <vector>

#include "src/topo/sizing.hpp"

namespace osmosis::power {

/// Technology profile of one switch family used to build a fabric.
struct SwitchTechProfile {
  std::string name;
  int radix = 0;                  // ports per switch
  bool optical_datapath = false;  // SOA crossbar vs CMOS crossbar
  // Electronic datapath: energy per bit moved through the crossbar.
  double cmos_pj_per_bit = 5.0;
  // Optical datapath: static element power per switch (SOAs + amps),
  // independent of data rate.
  double optical_static_w_per_switch = 350.0;
  // Control (scheduler + gate drivers): energy per cell scheduled.
  double control_nj_per_cell = 1.0;
  // Transceiver power per OEO conversion endpoint (one O/E or E/O).
  double transceiver_w_per_port = 2.5;
  // Rough cost figures for the $/Gb/s comparison (§VII).
  double cost_per_switch_usd = 0.0;
  double cost_per_transceiver_usd = 0.0;
};

/// The three §VI.C contenders, calibrated to the paper's stage counts.
SwitchTechProfile osmosis_profile();          // 64-port optical
SwitchTechProfile highend_electronic_profile();  // 32-port electronic
SwitchTechProfile commodity_electronic_profile(); // 8-port electronic

/// Power of ONE switch moving `aggregate_gbps` of traffic with
/// `cells_per_s` scheduling decisions per second.
double switch_power_w(const SwitchTechProfile& tech, double aggregate_gbps,
                      double cells_per_s);

/// Full §VI.C roll-up for one technology building an `endpoint_ports`
/// fabric at `port_rate_gbps` per port.
struct FabricPowerReport {
  std::string technology;
  topo::FatTreeSizing sizing;
  double switch_power_w = 0.0;       // all crossbars + schedulers
  double transceiver_power_w = 0.0;  // all OEO endpoints
  double total_power_w = 0.0;
  double power_per_port_w = 0.0;
  double oeo_pairs_per_path = 0.0;
  double cost_usd = 0.0;
  double usd_per_gbps = 0.0;
};

FabricPowerReport fabric_power(const SwitchTechProfile& tech,
                               std::uint64_t endpoint_ports,
                               double port_rate_gbps, double cell_bytes);

/// §VII scaling envelopes: the largest single-stage aggregate bandwidth
/// each technology supports.
double electronic_single_stage_limit_tbps();  // paper: 6-8 Tb/s
/// OSMOSIS aggregate = fibers x wavelengths x line rate (>= 50 Tb/s
/// claimed; 256 ports x 200 Gb/s is the quoted design point).
double osmosis_aggregate_tbps(int fibers, int wavelengths,
                              double line_rate_gbps);

}  // namespace osmosis::power
