#include "src/power/power_model.hpp"

#include "src/util/log.hpp"

namespace osmosis::power {

SwitchTechProfile osmosis_profile() {
  SwitchTechProfile t;
  t.name = "OSMOSIS 64p optical";
  t.radix = 64;
  t.optical_datapath = true;
  // 2048 SOA gates, of which 2/cell-path are biased, 8 amplifiers; the
  // headline property is that none of this scales with the bit rate.
  t.optical_static_w_per_switch = 350.0;
  t.control_nj_per_cell = 1.0;
  t.transceiver_w_per_port = 2.5;
  t.cost_per_switch_usd = 250'000.0;
  t.cost_per_transceiver_usd = 400.0;
  return t;
}

SwitchTechProfile highend_electronic_profile() {
  SwitchTechProfile t;
  t.name = "high-end electronic 32p";
  t.radix = 32;
  t.optical_datapath = false;
  t.cmos_pj_per_bit = 5.0;  // crossbar + SerDes energy per bit moved
  t.control_nj_per_cell = 0.5;
  t.transceiver_w_per_port = 2.5;
  t.cost_per_switch_usd = 60'000.0;
  t.cost_per_transceiver_usd = 400.0;
  return t;
}

SwitchTechProfile commodity_electronic_profile() {
  SwitchTechProfile t;
  t.name = "commodity electronic 8p";
  t.radix = 8;
  t.optical_datapath = false;
  t.cmos_pj_per_bit = 8.0;  // older process, less integration
  t.control_nj_per_cell = 0.5;
  t.transceiver_w_per_port = 2.5;
  t.cost_per_switch_usd = 4'000.0;
  t.cost_per_transceiver_usd = 400.0;
  return t;
}

double switch_power_w(const SwitchTechProfile& tech, double aggregate_gbps,
                      double cells_per_s) {
  OSMOSIS_REQUIRE(aggregate_gbps >= 0.0 && cells_per_s >= 0.0,
                  "negative load in power model");
  const double control_w = cells_per_s * tech.control_nj_per_cell * 1e-9;
  if (tech.optical_datapath) {
    // Element power independent of data rate (§I); control scales with
    // the packet rate only.
    return tech.optical_static_w_per_switch + control_w;
  }
  // CMOS: power proportional to the data rate through the chip.
  return aggregate_gbps * 1e9 * tech.cmos_pj_per_bit * 1e-12 + control_w;
}

FabricPowerReport fabric_power(const SwitchTechProfile& tech,
                               std::uint64_t endpoint_ports,
                               double port_rate_gbps, double cell_bytes) {
  OSMOSIS_REQUIRE(port_rate_gbps > 0.0 && cell_bytes > 0.0,
                  "rate and cell size must be positive");
  FabricPowerReport r;
  r.technology = tech.name;
  r.sizing = topo::size_fat_tree(tech.radix, endpoint_ports);

  // Aggregate traffic through one switch at full load: every port busy.
  const double per_switch_gbps =
      static_cast<double>(tech.radix) * port_rate_gbps;
  const double cells_per_port_s = port_rate_gbps * 1e9 / (cell_bytes * 8.0);
  const double per_switch_cells_s =
      static_cast<double>(tech.radix) * cells_per_port_s;

  r.switch_power_w = static_cast<double>(r.sizing.switches_total) *
                     switch_power_w(tech, per_switch_gbps, per_switch_cells_s);

  // OEO endpoints: with input-only buffering each stage terminates the
  // incoming fiber once (O/E) and relaunches once (E/O) per port; count
  // transceiver pairs on every switch port plus the host adapters.
  const double switch_ports = static_cast<double>(r.sizing.switches_total) *
                              static_cast<double>(tech.radix);
  const double host_ports = static_cast<double>(r.sizing.endpoint_ports);
  r.transceiver_power_w =
      (switch_ports + host_ports) * tech.transceiver_w_per_port;

  r.total_power_w = r.switch_power_w + r.transceiver_power_w;
  r.power_per_port_w =
      r.total_power_w / static_cast<double>(r.sizing.endpoint_ports);
  r.oeo_pairs_per_path = static_cast<double>(r.sizing.oeo_pairs_per_path);

  r.cost_usd = static_cast<double>(r.sizing.switches_total) *
                   tech.cost_per_switch_usd +
               (switch_ports + host_ports) * tech.cost_per_transceiver_usd;
  const double fabric_gbps =
      static_cast<double>(r.sizing.endpoint_ports) * port_rate_gbps;
  r.usd_per_gbps = r.cost_usd / fabric_gbps;
  return r;
}

double electronic_single_stage_limit_tbps() { return 8.0; }

double osmosis_aggregate_tbps(int fibers, int wavelengths,
                              double line_rate_gbps) {
  OSMOSIS_REQUIRE(fibers >= 1 && wavelengths >= 1 && line_rate_gbps > 0.0,
                  "invalid aggregate-bandwidth parameters");
  return static_cast<double>(fibers) * static_cast<double>(wavelengths) *
         line_rate_gbps / 1000.0;
}

}  // namespace osmosis::power
