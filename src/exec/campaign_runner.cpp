#include "src/exec/campaign_runner.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/api/serve_sim.hpp"
#include "src/exec/thread_pool.hpp"
#include "src/fabric/fabric_sim.hpp"
#include "src/prof/profiler.hpp"
#include "src/sim/traffic.hpp"
#include "src/sw/event_switch_sim.hpp"
#include "src/sw/switch_sim.hpp"
#include "src/telemetry/json.hpp"
#include "src/topo/topo_sim.hpp"
#include "src/util/log.hpp"

namespace osmosis::exec {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string hex_seed(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

std::unique_ptr<sim::TrafficGen> make_traffic(const JobSpec& j, int ports) {
  if (j.traffic == TrafficKind::kBursty)
    return sim::make_bursty(ports, j.load, j.mean_burst, j.seed);
  return sim::make_uniform(ports, j.load, j.seed);
}

class SwitchJobDriver final : public JobDriver {
 public:
  explicit SwitchJobDriver(const JobSpec& j)
      : faulty_(j.fault != FaultScenario::kNone) {
    sw::SwitchSimConfig cfg;
    cfg.ports = j.ports;
    cfg.sched.kind = j.scheduler;
    cfg.sched.receivers = j.receivers;
    cfg.sched.iterations = j.iterations;
    cfg.sched.flppr_policy = j.policy;
    cfg.warmup_slots = j.warmup_slots;
    cfg.measure_slots = j.measure_slots;
    cfg.telemetry.enabled = true;
    cfg.telemetry.sample_every = 4;
    if (faulty_) {
      cfg.fault_plan =
          make_fault_plan(j.fault, j.warmup_slots, j.measure_slots);
      cfg.fault_plan.seeded(j.seed ^ 0x0FA7'17ULL);
    }
    // The drain phase runs with arrivals off after the measurement
    // window, so it never shifts the measured stats — always enable it
    // and carry the exactly-once verdict for every job.
    cfg.drain_max_slots = 50'000;
    sim_ = std::make_unique<sw::SwitchSim>(cfg, make_traffic(j, cfg.ports));
  }

  bool advance() override { return sim_->advance_slot(); }
  void save(ckpt::Writer& w) const override { sim_->save_state(w); }
  void load(const ckpt::Reader& r) override { sim_->load_state(r); }
  JobResult finalize() override;

 private:
  bool faulty_;
  std::unique_ptr<sw::SwitchSim> sim_;
};

JobResult SwitchJobDriver::finalize() {
  const auto r = sim_->finalize();
  auto& sim = *sim_;
  const bool faulty = faulty_;

  JobResult out;
  out.metrics["throughput"] = r.throughput;
  out.metrics["delivered"] = static_cast<double>(r.delivered);
  out.metrics["mean_delay"] = r.mean_delay;
  out.metrics["p99_delay"] = r.p99_delay;
  out.metrics["max_delay"] = r.max_delay;
  out.metrics["mean_grant_latency"] = r.mean_grant_latency;
  out.metrics["p99_grant_latency"] = r.p99_grant_latency;
  out.metrics["out_of_order"] = static_cast<double>(r.out_of_order);
  out.metrics["max_voq_depth"] = r.max_voq_depth;
  out.metrics["exactly_once_in_order"] = r.exactly_once_in_order ? 1.0 : 0.0;
  out.metrics["min_window_throughput"] = r.min_window_throughput;
  if (faulty) {
    out.metrics["grant_corruptions"] =
        static_cast<double>(r.grant_corruptions);
    out.metrics["retransmissions"] = static_cast<double>(r.retransmissions);
    out.metrics["faults_injected"] = static_cast<double>(r.faults_injected);
    out.metrics["faults_recovered"] = static_cast<double>(r.faults_recovered);
    out.metrics["mean_recovery_slots"] = r.mean_recovery_slots;
  }
  out.report = sim.report();
  out.raw_hists.emplace("delay", sim.delay_histogram());
  out.raw_hists.emplace("grant_latency", sim.grant_latency_histogram());
  return out;
}

class EventSwitchJobDriver final : public JobDriver {
 public:
  explicit EventSwitchJobDriver(const JobSpec& j) {
    sw::EventSwitchConfig cfg;
    cfg.ports = j.ports;
    cfg.sched.kind = j.scheduler;
    cfg.sched.receivers = j.receivers;
    cfg.sched.iterations = j.iterations;
    cfg.sched.flppr_policy = j.policy;
    cfg.warmup_ns = static_cast<double>(j.warmup_slots) * cfg.cell_ns;
    cfg.measure_ns = static_cast<double>(j.measure_slots) * cfg.cell_ns;
    cfg.telemetry.enabled = true;
    cfg.telemetry.sample_every = 4;
    if (j.fault != FaultScenario::kNone) {
      cfg.fault_plan =
          make_fault_plan(j.fault, j.warmup_slots, j.measure_slots);
      cfg.fault_plan.seeded(j.seed ^ 0x0FA7'17ULL);
      cfg.drain_max_cycles = 50'000;
    }
    sim_ = std::make_unique<sw::EventSwitchSim>(cfg,
                                                make_traffic(j, cfg.ports));
  }

  bool advance() override { return sim_->advance(); }
  void save(ckpt::Writer& w) const override { sim_->save_state(w); }
  void load(const ckpt::Reader& r) override { sim_->load_state(r); }
  JobResult finalize() override;

 private:
  std::unique_ptr<sw::EventSwitchSim> sim_;
};

JobResult EventSwitchJobDriver::finalize() {
  const auto r = sim_->finalize();
  auto& sim = *sim_;

  JobResult out;
  out.metrics["throughput"] = r.throughput;
  out.metrics["delivered"] = static_cast<double>(r.delivered);
  out.metrics["mean_delay_ns"] = r.mean_delay_ns;
  out.metrics["p99_delay_ns"] = r.p99_delay_ns;
  out.metrics["mean_grant_latency_ns"] = r.mean_grant_latency_ns;
  out.metrics["receiver_conflicts"] =
      static_cast<double>(r.receiver_conflicts);
  out.metrics["out_of_order"] = static_cast<double>(r.out_of_order);
  out.report = sim.report();
  out.raw_hists.emplace("delay", sim.delay_histogram());
  out.raw_hists.emplace("grant_latency", sim.grant_latency_histogram());
  return out;
}

class FabricJobDriver final : public JobDriver {
 public:
  explicit FabricJobDriver(const JobSpec& j) {
    fabric::FabricSimConfig cfg;
    cfg.radix = j.ports;
    cfg.scheduler = j.scheduler;
    cfg.scheduler_iterations = j.iterations;
    cfg.warmup_slots = j.warmup_slots;
    cfg.measure_slots = j.measure_slots;
    cfg.telemetry.enabled = true;
    cfg.telemetry.sample_every = 4;
    if (j.fault != FaultScenario::kNone) {
      cfg.fault_plan =
          make_fault_plan(j.fault, j.warmup_slots, j.measure_slots);
      cfg.fault_plan.seeded(j.seed ^ 0x0FA7'17ULL);
      cfg.drain_max_slots = 50'000;
    }
    if (j.fault == FaultScenario::kSpinePermanent) {
      // A permanent spine cut is only viable under graceful degradation:
      // adaptive routing re-spreads the flows and admission keeps the
      // backlog bounded at the reduced capacity.
      cfg.adaptive_routing = true;
      cfg.admission.enabled = true;
      degraded_ = true;
    }
    const int hosts = cfg.radix * cfg.radix / 2;
    sim_ = std::make_unique<fabric::FabricSim>(
        cfg, j.traffic == TrafficKind::kBursty
                 ? sim::make_bursty(hosts, j.load, j.mean_burst, j.seed)
                 : sim::make_uniform(hosts, j.load, j.seed));
  }

  bool advance() override { return sim_->advance_slot(); }
  void save(ckpt::Writer& w) const override { sim_->save_state(w); }
  void load(const ckpt::Reader& r) override { sim_->load_state(r); }
  JobResult finalize() override;

 private:
  std::unique_ptr<fabric::FabricSim> sim_;
  bool degraded_ = false;  // graceful-degradation scenario: extra metrics
};

JobResult FabricJobDriver::finalize() {
  const auto r = sim_->finalize();
  auto& sim = *sim_;

  JobResult out;
  out.metrics["throughput"] = r.throughput;
  out.metrics["delivered"] = static_cast<double>(r.delivered);
  out.metrics["mean_delay"] = r.mean_delay_slots;
  out.metrics["p99_delay"] = r.p99_delay_slots;
  out.metrics["out_of_order"] = static_cast<double>(r.out_of_order);
  out.metrics["buffer_overflows"] = static_cast<double>(r.buffer_overflows);
  out.metrics["hosts"] = r.hosts;
  if (degraded_) {
    out.metrics["shed_cells"] = static_cast<double>(r.shed_cells);
    out.metrics["resteered"] = static_cast<double>(r.resteered);
    out.metrics["brownout_slots"] = static_cast<double>(r.brownout_slots);
    out.metrics["max_resequencer_depth"] =
        static_cast<double>(r.max_resequencer_depth);
  }
  out.report = sim.report();
  out.raw_hists.emplace("delay", sim.delay_histogram());
  return out;
}

class ServeJobDriver final : public JobDriver {
 public:
  explicit ServeJobDriver(const JobSpec& j)
      : faulty_(j.fault != FaultScenario::kNone) {
    api::ServeSimConfig cfg;
    cfg.sw.ports = j.ports;
    cfg.sw.sched.kind = j.scheduler;
    cfg.sw.sched.receivers = j.receivers;
    cfg.sw.sched.iterations = j.iterations;
    cfg.sw.sched.flppr_policy = j.policy;
    cfg.sw.warmup_slots = j.warmup_slots;
    cfg.sw.measure_slots = j.measure_slots;
    cfg.sw.telemetry.enabled = true;
    cfg.sw.telemetry.sample_every = 4;
    if (faulty_) {
      cfg.sw.fault_plan =
          make_fault_plan(j.fault, j.warmup_slots, j.measure_slots);
      cfg.sw.fault_plan.seeded(j.seed ^ 0x0FA7'17ULL);
    }
    cfg.sw.drain_max_slots = 50'000;
    cfg.seed = j.seed;
    cfg.openloop.clients = j.clients;
    cfg.openloop.tenants = j.tenants;
    cfg.openloop.arrival = j.arrival;
    cfg.openloop.load = j.load;
    cfg.admission.enabled = true;
    sim_ = std::make_unique<api::ServeSim>(std::move(cfg));
  }

  bool advance() override { return sim_->advance_slot(); }
  void save(ckpt::Writer& w) const override { sim_->save_state(w); }
  void load(const ckpt::Reader& r) override { sim_->load_state(r); }
  JobResult finalize() override;

 private:
  bool faulty_;
  std::unique_ptr<api::ServeSim> sim_;
};

JobResult ServeJobDriver::finalize() {
  const auto r = sim_->finalize();
  auto& sim = *sim_;

  JobResult out;
  out.metrics["throughput"] = r.cell_level.throughput;
  out.metrics["delivered_cells"] =
      static_cast<double>(r.cell_level.delivered);
  out.metrics["mean_delay"] = r.cell_level.mean_delay;
  out.metrics["p99_delay"] = r.cell_level.p99_delay;
  out.metrics["mean_grant_latency"] = r.cell_level.mean_grant_latency;
  out.metrics["exactly_once_in_order"] =
      r.cell_level.exactly_once_in_order ? 1.0 : 0.0;
  out.metrics["offered"] = static_cast<double>(r.offered);
  out.metrics["accepted"] = static_cast<double>(r.accepted);
  out.metrics["shed"] = static_cast<double>(r.shed);
  out.metrics["delivered"] = static_cast<double>(r.delivered);
  out.metrics["sends"] = static_cast<double>(r.sends);
  out.metrics["rma_writes"] = static_cast<double>(r.rma_writes);
  out.metrics["rma_reads"] = static_cast<double>(r.rma_reads);
  out.metrics["rma_errors"] = static_cast<double>(r.rma_errors);
  out.metrics["cq_overruns"] = static_cast<double>(r.cq_overruns);
  out.metrics["mean_latency"] = r.mean_latency;
  out.metrics["p50_latency"] = r.p50_latency;
  out.metrics["p99_latency"] = r.p99_latency;
  out.metrics["p999_latency"] = r.p999_latency;
  if (faulty_) {
    out.metrics["faults_injected"] =
        static_cast<double>(r.cell_level.faults_injected);
    out.metrics["faults_recovered"] =
        static_cast<double>(r.cell_level.faults_recovered);
  }
  out.report = sim.report();
  out.raw_hists.emplace("delay", sim.switch_sim().delay_histogram());
  out.raw_hists.emplace("grant_latency",
                        sim.switch_sim().grant_latency_histogram());
  out.raw_hists.emplace("serving_latency", sim.latency_histogram());
  return out;
}

class TopoJobDriver final : public JobDriver {
 public:
  explicit TopoJobDriver(const JobSpec& j)
      : faulty_(j.fault != FaultScenario::kNone) {
    topo::TopoSimConfig cfg;
    cfg.topology = j.topology;
    cfg.hosts = j.ports;  // topo jobs: the ports axis is the host count
    cfg.routing = j.routing;
    cfg.fc.kind = j.flow_control;
    cfg.scheduler = j.scheduler;
    cfg.scheduler_iterations = j.iterations;
    cfg.warmup_slots = j.warmup_slots;
    cfg.measure_slots = j.measure_slots;
    // Always drain, so the exactly-once audit sees every packet land.
    cfg.drain_max_slots = 50'000;
    if (faulty_) {
      cfg.fault_plan =
          make_fault_plan(j.fault, j.warmup_slots, j.measure_slots);
      cfg.fault_plan.seeded(j.seed ^ 0x0FA7'17ULL);
    }
    // Wormhole streams flits_per_packet flits per packet, so inject
    // packets at load / flits_per_packet to offer the same flit load as
    // the cell kinds (the run_topo_uniform rule).
    const double p = j.flow_control == topo::FcKind::kWormholeVc
                         ? j.load / cfg.fc.flits_per_packet
                         : j.load;
    sim_ = std::make_unique<topo::TopoSim>(
        cfg, j.traffic == TrafficKind::kBursty
                 ? sim::make_bursty(cfg.hosts, p, j.mean_burst, j.seed)
                 : sim::make_uniform(cfg.hosts, p, j.seed));
  }

  bool advance() override { return sim_->advance_slot(); }
  void save(ckpt::Writer& w) const override { sim_->save_state(w); }
  void load(const ckpt::Reader& r) override { sim_->load_state(r); }
  JobResult finalize() override;

 private:
  bool faulty_;
  std::unique_ptr<topo::TopoSim> sim_;
};

JobResult TopoJobDriver::finalize() {
  const auto r = sim_->finalize();
  auto& sim = *sim_;

  JobResult out;
  out.metrics["throughput"] = r.throughput;
  out.metrics["delivered"] = static_cast<double>(r.delivered);
  out.metrics["mean_delay"] = r.mean_delay_slots;
  out.metrics["p99_delay"] = r.p99_delay_slots;
  out.metrics["mean_hops"] = r.mean_hops;
  out.metrics["stages"] = r.stages;
  out.metrics["diameter"] = r.diameter;
  out.metrics["hosts"] = r.hosts;
  out.metrics["out_of_order"] = static_cast<double>(r.out_of_order);
  out.metrics["buffer_overflows"] = static_cast<double>(r.buffer_overflows);
  out.metrics["exactly_once_in_order"] = r.exactly_once_in_order ? 1.0 : 0.0;
  out.metrics["invariant_violations"] =
      static_cast<double>(r.invariant_violations);
  if (faulty_) {
    out.metrics["faults_injected"] = static_cast<double>(r.faults_injected);
    out.metrics["faults_repaired"] = static_cast<double>(r.faults_repaired);
  }
  out.report = sim.report();
  out.raw_hists.emplace("delay", sim.delay_histogram());
  return out;
}

// Serialized-spec equality: two JobSpecs match iff every axis value
// matches, byte for byte.
std::string spec_bytes(const JobSpec& spec) {
  ckpt::Sink s;
  ckpt::field(s, const_cast<JobSpec&>(spec));
  return s.take();
}

void write_spec_chunk(ckpt::Writer& w, const JobSpec& spec) {
  w.add_chunk("job.spec", spec_bytes(spec));
}

void require_spec_match(const ckpt::Reader& r, const JobSpec& expected) {
  ckpt::Source s = r.chunk("job.spec");
  JobSpec seen;
  ckpt::field(s, seen);
  s.expect_end();
  if (spec_bytes(seen) != spec_bytes(expected))
    throw ckpt::Error("checkpoint belongs to a different job (found '" +
                      seen.label() + "')");
}

std::string job_state_path(const CheckpointPolicy& ck, std::size_t index) {
  return ck.dir + "/job_" + std::to_string(index) + ".state.ckpt";
}

std::string job_done_path(const CheckpointPolicy& ck, std::size_t index) {
  return ck.dir + "/job_" + std::to_string(index) + ".done.ckpt";
}

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

// Cooperative watchdog granularity: wall-clock checks between advance
// steps are this sparse so the fault-free hot loop stays unmeasurable.
constexpr std::uint64_t kTimeoutCheckStride = 1024;

void check_deadline(const JobSpec& spec, Clock::time_point t0,
                    double timeout_ms, std::uint64_t steps) {
  if (timeout_ms <= 0.0 || steps % kTimeoutCheckStride != 0) return;
  const double elapsed = ms_since(t0);
  if (elapsed <= timeout_ms) return;
  std::ostringstream os;
  os << "job '" << spec.label() << "' exceeded its " << timeout_ms
     << " ms budget (" << elapsed << " ms after " << steps
     << " advance steps)";
  throw JobTimeout(os.str());
}

}  // namespace

std::unique_ptr<JobDriver> make_job_driver(const JobSpec& spec) {
  switch (spec.sim) {
    case SimKind::kSwitch: return std::make_unique<SwitchJobDriver>(spec);
    case SimKind::kEventSwitch:
      return std::make_unique<EventSwitchJobDriver>(spec);
    case SimKind::kFabric: return std::make_unique<FabricJobDriver>(spec);
    case SimKind::kServe: return std::make_unique<ServeJobDriver>(spec);
    case SimKind::kTopo: return std::make_unique<TopoJobDriver>(spec);
  }
  OSMOSIS_REQUIRE(false, "unknown SimKind");
  return nullptr;
}

JobResult run_job(const JobSpec& spec, double timeout_ms) {
  const auto t0 = Clock::now();
  auto driver = make_job_driver(spec);
  std::uint64_t steps = 0;
  while (driver->advance()) {
    check_deadline(spec, t0, timeout_ms, ++steps);
  }
  JobResult out = driver->finalize();
  out.spec = spec;
  out.ok = true;
  return out;
}

JobSpec read_job_spec_chunk(const ckpt::Reader& r) {
  ckpt::Source s = r.chunk("job.spec");
  JobSpec spec;
  ckpt::field(s, spec);
  s.expect_end();
  return spec;
}

std::uint64_t read_job_progress(const ckpt::Reader& r) {
  std::uint64_t steps = 0;
  ckpt::read_chunk(r, "job.progress",
                   [&](ckpt::Source& s) { ckpt::field(s, steps); });
  return steps;
}

std::uint32_t job_state_digest(const JobDriver& d) {
  ckpt::Writer w;
  d.save(w);
  return ckpt::crc32(w.serialize());
}

void write_job_result_file(const JobResult& r, const std::string& path) {
  ckpt::Writer w;
  write_spec_chunk(w, r.spec);
  auto* self = const_cast<JobResult*>(&r);
  ckpt::write_chunk(w, "job.result", [&](ckpt::Sink& s) {
    ckpt::field(s, self->ok);
    ckpt::field(s, self->attempts);
    ckpt::field(s, self->timed_out);
    ckpt::field(s, self->quarantined);
    ckpt::field(s, self->failure_class);
    ckpt::field(s, self->error);
    ckpt::field(s, self->metrics);
    ckpt::field(s, self->wall_ms);
  });
  ckpt::write_chunk(w, "job.report",
                    [&](ckpt::Sink& s) { ckpt::field(s, self->report); });
  // Raw histograms carry their bin shape out-of-band so the loader can
  // construct each one before Histogram::io_state verifies it.
  ckpt::write_chunk(w, "job.hists", [&](ckpt::Sink& s) {
    std::uint64_t n = r.raw_hists.size();
    ckpt::field(s, n);
    for (auto& [name, h] : self->raw_hists) {
      std::string key = name;
      double limit = h.linear_limit();
      double growth = h.growth();
      ckpt::field(s, key);
      ckpt::field(s, limit);
      ckpt::field(s, growth);
      ckpt::field(s, h);
    }
  });
  w.write_file(path);
}

JobResult read_job_result_file(const JobSpec& expected,
                               const std::string& path) {
  const ckpt::Reader r = ckpt::Reader::from_file(path);
  require_spec_match(r, expected);
  JobResult out;
  out.spec = expected;
  ckpt::read_chunk(r, "job.result", [&](ckpt::Source& s) {
    ckpt::field(s, out.ok);
    ckpt::field(s, out.attempts);
    ckpt::field(s, out.timed_out);
    ckpt::field(s, out.quarantined);
    ckpt::field(s, out.failure_class);
    ckpt::field(s, out.error);
    ckpt::field(s, out.metrics);
    ckpt::field(s, out.wall_ms);
  });
  ckpt::read_chunk(r, "job.report",
                   [&](ckpt::Source& s) { ckpt::field(s, out.report); });
  ckpt::read_chunk(r, "job.hists", [&](ckpt::Source& s) {
    std::uint64_t n = 0;
    ckpt::field(s, n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string key;
      double limit = 0.0;
      double growth = 0.0;
      ckpt::field(s, key);
      ckpt::field(s, limit);
      ckpt::field(s, growth);
      sim::Histogram h(limit, growth);
      ckpt::field(s, h);
      out.raw_hists.emplace(std::move(key), std::move(h));
    }
  });
  return out;
}

JobResult run_job_checkpointed(const JobSpec& spec,
                               const CheckpointPolicy& ck,
                               double timeout_ms) {
  if (ck.dir.empty()) return run_job(spec, timeout_ms);
  const auto t0 = Clock::now();
  const std::string state_path = job_state_path(ck, spec.index);
  auto driver = make_job_driver(spec);
  std::uint64_t steps = 0;
  if (ck.resume && file_exists(state_path)) {
    try {
      const ckpt::Reader r = ckpt::Reader::from_file(state_path);
      require_spec_match(r, spec);
      steps = read_job_progress(r);
      driver->load(r);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "[osmosis] warning: ignoring unusable checkpoint %s (%s); "
                   "re-running job %zu from scratch\n",
                   state_path.c_str(), e.what(), spec.index);
      driver = make_job_driver(spec);  // drop any partially loaded state
      steps = 0;
    }
  }
  while (driver->advance()) {
    ++steps;
    check_deadline(spec, t0, timeout_ms, steps);
    if (ck.every > 0 && steps % ck.every == 0) {
      ckpt::Writer w;
      write_spec_chunk(w, spec);
      ckpt::write_chunk(w, "job.progress",
                        [&](ckpt::Sink& s) { ckpt::field(s, steps); });
      driver->save(w);
      w.write_file(state_path);
      if (ck.on_checkpoint) ck.on_checkpoint(state_path, steps);
    }
  }
  JobResult out = driver->finalize();
  out.spec = spec;
  out.ok = true;
  return out;
}

std::size_t CampaignResult::failed_jobs() const {
  std::size_t n = 0;
  for (const auto& j : jobs)
    if (!j.ok) ++n;
  return n;
}

const JobResult* CampaignResult::find(
    const std::function<bool(const JobSpec&)>& pred) const {
  for (const auto& j : jobs)
    if (pred(j.spec)) return &j;
  return nullptr;
}

std::string CampaignResult::to_json(int indent, bool include_timing) const {
  telemetry::JsonWriter w(indent);
  w.open('{');
  w.key("schema");
  w.string(kSchema);
  w.key("name");
  w.string(name);
  w.key("campaign_seed");
  w.string(hex_seed(campaign_seed));

  w.key("jobs");
  w.open('[');
  for (const auto& j : jobs) {
    w.open('{');
    w.key("index");
    w.number(static_cast<double>(j.spec.index));
    w.key("label");
    w.string(j.spec.label());
    w.key("sim");
    w.string(to_string(j.spec.sim));
    w.key("scheduler");
    w.string(to_string(j.spec.scheduler));
    w.key("iterations");
    w.number(j.spec.iterations);
    w.key("policy");
    w.string(to_string(j.spec.policy));
    w.key("ports");
    w.number(j.spec.ports);
    w.key("receivers");
    w.number(j.spec.receivers);
    w.key("traffic");
    w.string(to_string(j.spec.traffic));
    w.key("load");
    w.number(j.spec.load);
    // Serving axes appear only on serve jobs, so documents from legacy
    // grids keep their exact bytes.
    if (j.spec.sim == SimKind::kServe) {
      w.key("clients");
      w.number(static_cast<double>(j.spec.clients));
      w.key("arrival");
      w.string(to_string(j.spec.arrival));
      w.key("tenants");
      w.number(j.spec.tenants);
    }
    // Topology axes likewise appear only on topo jobs.
    if (j.spec.sim == SimKind::kTopo) {
      w.key("topology");
      w.string(topo::to_string(j.spec.topology));
      w.key("flow_control");
      w.string(topo::to_string(j.spec.flow_control));
      w.key("routing");
      w.string(topo::to_string(j.spec.routing));
    }
    w.key("fault");
    w.string(to_string(j.spec.fault));
    w.key("rep");
    w.number(j.spec.repetition);
    w.key("seed");
    w.string(hex_seed(j.spec.seed));
    w.key("ok");
    w.boolean(j.ok);
    w.key("attempts");
    w.number(j.attempts);
    w.key("error");
    w.string(j.error);
    if (!j.failure_class.empty()) {
      w.key("failure_class");
      w.string(j.failure_class);
    }
    if (j.quarantined) {
      w.key("quarantined");
      w.boolean(true);
    }
    w.key("metrics");
    w.open('{');
    for (const auto& [k, v] : j.metrics) {
      w.key(k);
      w.number(v);
    }
    w.close('}');
    w.key("histograms");
    w.open('{');
    for (const auto& [hname, h] : j.report.histograms) {
      w.key(hname);
      telemetry::write_histogram_summary(w, h);
    }
    w.close('}');
    if (include_timing) {
      w.key("wall_ms");
      w.number(j.wall_ms);
      w.key("timed_out");
      w.boolean(j.timed_out);
    }
    w.close('}');
  }
  w.close(']');

  w.key("aggregate");
  w.open('{');
  w.key("jobs");
  w.number(static_cast<double>(jobs.size()));
  w.key("failed");
  w.number(static_cast<double>(failed_jobs()));
  w.key("counters");
  w.open('{');
  for (const auto& [k, v] : aggregate_counters.snapshot()) {
    w.key(k);
    w.number(v);
  }
  w.close('}');
  w.key("histograms");
  w.open('{');
  for (const auto& [hname, h] : aggregate_hists) {
    w.key(hname);
    telemetry::write_histogram_summary(
        w, telemetry::HistogramSummary::of(h));
  }
  w.close('}');
  w.close('}');

  // Quarantined jobs, only when any exist — clean campaigns stay
  // byte-identical to documents written before this section existed.
  bool any_quarantined = false;
  for (const auto& j : jobs) any_quarantined |= j.quarantined;
  if (any_quarantined) {
    w.key("quarantine");
    w.open('[');
    for (const auto& j : jobs) {
      if (!j.quarantined) continue;
      w.open('{');
      w.key("index");
      w.number(static_cast<double>(j.spec.index));
      w.key("label");
      w.string(j.spec.label());
      w.key("class");
      w.string(j.failure_class);
      w.key("error");
      w.string(j.error);
      w.close('}');
    }
    w.close(']');
  }

  if (include_timing) {
    w.key("timing");
    w.open('{');
    w.key("wall_ms");
    w.number(wall_ms);
    w.key("threads");
    w.number(threads_used);
    w.close('}');
  }

  w.close('}');
  return w.str();
}

CampaignRunner::CampaignRunner(RunnerOptions opts) : opts_(std::move(opts)) {
  OSMOSIS_REQUIRE(opts_.max_attempts >= 1, "runner needs max_attempts >= 1");
}

JobResult CampaignRunner::execute_with_retry(const JobSpec& spec) const {
  JobResult result;
  std::string prev_error;
  for (int attempt = 1; attempt <= opts_.max_attempts; ++attempt) {
    if (attempt > 1 && opts_.retry_backoff_ms > 0.0) {
      const double mult =
          std::min(8.0, std::pow(2.0, static_cast<double>(attempt - 2)));
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          opts_.retry_backoff_ms * mult));
    }
    const auto t0 = Clock::now();
    try {
      result = opts_.executor
                   ? opts_.executor(spec)
                   : run_job_checkpointed(spec, opts_.checkpoint,
                                          opts_.job_timeout_ms);
      result.spec = spec;
      result.attempts = attempt;
      result.wall_ms = ms_since(t0);
      // A custom executor cannot be cancelled from outside; an overrun
      // there is flagged but the completed result is kept.
      result.timed_out = opts_.job_timeout_ms > 0.0 &&
                         result.wall_ms > opts_.job_timeout_ms;
      return result;
    } catch (const JobTimeout& e) {
      // Budget exceeded: retrying would burn another full budget on a
      // job that is deterministic in its seed — quarantine immediately.
      result = JobResult{};
      result.spec = spec;
      result.attempts = attempt;
      result.error = e.what();
      result.timed_out = true;
      result.quarantined = true;
      result.failure_class = "timeout";
      result.wall_ms = ms_since(t0);
      return result;
    } catch (const std::exception& e) {
      result = JobResult{};
      result.spec = spec;
      result.attempts = attempt;
      result.error = e.what();
    } catch (...) {
      result = JobResult{};
      result.spec = spec;
      result.attempts = attempt;
      result.error = "unknown exception";
    }
    result.wall_ms = ms_since(t0);
    // Same failure twice in a row: the job is a pure function of its
    // seed, so an identical message means an identical code path —
    // deterministic, quarantine instead of retrying.
    if (attempt > 1 && result.error == prev_error) {
      result.quarantined = true;
      result.failure_class = "deterministic";
      return result;
    }
    prev_error = result.error;
  }
  result.failure_class = "transient";
  return result;  // ok == false after exhausting attempts
}

CampaignResult CampaignRunner::run(const CampaignSpec& spec) {
  const std::vector<JobSpec> jobs = spec.expand();

  CampaignResult out;
  out.name = spec.name;
  out.campaign_seed = spec.campaign_seed;
  out.jobs.resize(jobs.size());

  // Resume pass: completed jobs load verbatim from their done files and
  // never re-run; anything unusable falls through to normal execution.
  const CheckpointPolicy& ck = opts_.checkpoint;
  std::vector<char> restored(jobs.size(), 0);
  if (ck.resume && !ck.dir.empty()) {
    for (const JobSpec& job : jobs) {
      const std::string path = job_done_path(ck, job.index);
      if (!file_exists(path)) continue;
      try {
        out.jobs[job.index] = read_job_result_file(job, path);
        restored[job.index] = 1;
        if (opts_.on_job_done) opts_.on_job_done(out.jobs[job.index]);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "[osmosis] warning: ignoring unusable checkpoint %s "
                     "(%s); re-running job %zu from scratch\n",
                     path.c_str(), e.what(), job.index);
      }
    }
  }

  const auto t0 = Clock::now();
  {
    ThreadPool pool(opts_.threads);
    out.threads_used = pool.size();
    std::mutex done_mu;
    for (const JobSpec& job : jobs) {
      if (restored[job.index]) continue;
      // Each task writes only its own pre-sized slot, so no cross-job
      // synchronization is needed beyond the pool's queue.
      pool.submit([this, job, &out, &done_mu, &ck] {
        // One span per job on the worker's track: the campaign's Gantt
        // chart in the wall-clock Chrome trace.
        prof::ScopedTask task_span(job.label());
        JobResult r = execute_with_retry(job);
        if (!ck.dir.empty() && r.ok) {
          try {
            write_job_result_file(r, job_done_path(ck, job.index));
            std::remove(job_state_path(ck, job.index).c_str());
          } catch (const std::exception& e) {
            std::fprintf(stderr,
                         "[osmosis] warning: cannot write checkpoint for "
                         "job %zu: %s\n",
                         job.index, e.what());
          }
        }
        if (opts_.on_job_done) {
          std::lock_guard<std::mutex> lock(done_mu);
          opts_.on_job_done(r);
        }
        out.jobs[job.index] = std::move(r);
      });
    }
    pool.wait_idle();
    // execute_with_retry captures everything; an exception here would
    // mean a bug in the runner itself.
    OSMOSIS_REQUIRE(pool.take_exceptions().empty(),
                    "campaign job escaped its exception capture");
  }
  out.wall_ms = ms_since(t0);

  // Aggregate serially in job-index order: merge order is fixed, so the
  // merged floating-point results never depend on completion order.
  for (const auto& j : out.jobs) {
    if (!j.ok) continue;
    out.aggregate_counters.merge(j.report.counters);
    for (const auto& [hname, h] : j.raw_hists) {
      const std::string key = std::string(to_string(j.spec.sim)) + "." + hname;
      auto it = out.aggregate_hists.find(key);
      if (it == out.aggregate_hists.end()) {
        out.aggregate_hists.emplace(
            key, sim::Histogram(h.linear_limit(), h.growth()));
        it = out.aggregate_hists.find(key);
      }
      it->second.merge(h);
    }
  }
  return out;
}

}  // namespace osmosis::exec
