#include "src/exec/campaign.hpp"

#include <cstdio>

#include "src/sim/rng.hpp"
#include "src/util/log.hpp"

namespace osmosis::exec {

const char* to_string(SimKind kind) {
  switch (kind) {
    case SimKind::kSwitch: return "switch";
    case SimKind::kEventSwitch: return "event_switch";
    case SimKind::kFabric: return "fabric";
    case SimKind::kServe: return "serve";
    case SimKind::kTopo: return "topo";
  }
  return "?";
}

const char* to_string(TrafficKind kind) {
  switch (kind) {
    case TrafficKind::kUniform: return "uniform";
    case TrafficKind::kBursty: return "bursty";
  }
  return "?";
}

const char* to_string(FaultScenario scenario) {
  switch (scenario) {
    case FaultScenario::kNone: return "none";
    case FaultScenario::kModuleOutage: return "module_outage";
    case FaultScenario::kModulePermanent: return "module_permanent";
    case FaultScenario::kFiberCut: return "fiber_cut";
    case FaultScenario::kGrantCorruption: return "grant_corruption";
    case FaultScenario::kBurstErrors: return "burst_errors";
    case FaultScenario::kAdapterStall: return "adapter_stall";
    case FaultScenario::kCombined: return "combined";
    case FaultScenario::kSpineOutage: return "spine_outage";
    case FaultScenario::kSpinePermanent: return "spine_permanent";
  }
  return "?";
}

const char* to_string(sw::SchedulerKind kind) {
  switch (kind) {
    case sw::SchedulerKind::kIslip: return "islip";
    case sw::SchedulerKind::kPim: return "pim";
    case sw::SchedulerKind::kPipelinedIslip: return "pislip";
    case sw::SchedulerKind::kFlppr: return "flppr";
    case sw::SchedulerKind::kTdm: return "tdm";
    case sw::SchedulerKind::kWfa: return "wfa";
  }
  return "?";
}

const char* to_string(sw::FlpprPolicy policy) {
  switch (policy) {
    case sw::FlpprPolicy::kEarliestFirst: return "earliest";
    case sw::FlpprPolicy::kFixedOrder: return "fixed";
  }
  return "?";
}

faults::FaultPlan make_fault_plan(FaultScenario scenario,
                                  std::uint64_t warmup_slots,
                                  std::uint64_t measure_slots) {
  // bench_failures timing: the fault window opens a quarter of the way
  // into the measurement phase and spans another quarter of it.
  const std::uint64_t t0 = warmup_slots + measure_slots / 4;
  const std::uint64_t dur = measure_slots / 4;
  faults::FaultPlan p;
  switch (scenario) {
    case FaultScenario::kNone:
      break;
    case FaultScenario::kModuleOutage:
      p.kill_module(t0, 7, 1, dur);
      break;
    case FaultScenario::kModulePermanent:
      p.kill_module(t0, 7, 1);
      break;
    case FaultScenario::kFiberCut:
      p.cut_fiber(t0, 3, dur);
      break;
    case FaultScenario::kGrantCorruption:
      p.corrupt_grants(t0, dur, 0.02);
      break;
    case FaultScenario::kBurstErrors:
      p.burst_errors(t0, -1, dur, 0.01);
      break;
    case FaultScenario::kAdapterStall:
      p.stall_adapter(t0, 12, dur);
      break;
    case FaultScenario::kCombined:
      p.kill_module(t0, 7, 1, dur)
          .cut_fiber(t0 + dur / 2, 3, dur)
          .corrupt_grants(t0, dur, 0.01)
          .burst_errors(t0 + dur / 4, 5, dur, 0.02)
          .stall_adapter(t0 + dur / 3, 12, dur / 2);
      break;
    case FaultScenario::kSpineOutage:
      p.fail_plane(t0, 0, dur);
      break;
    case FaultScenario::kSpinePermanent:
      p.fail_plane(t0, 0);  // duration 0 = never repaired
      break;
  }
  return p;
}

std::uint64_t derive_job_seed(std::uint64_t campaign_seed,
                              std::uint64_t job_index) {
  // Whiten the campaign seed once, fold the index in with the SplitMix64
  // increment (odd, so distinct indices stay distinct), then finalize.
  std::uint64_t x = campaign_seed;
  const std::uint64_t whitened = sim::splitmix64(x);
  x = whitened ^ (job_index * 0x9E3779B97F4A7C15ULL);
  return sim::splitmix64(x);
}

std::string JobSpec::label() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s/%s/K%d/%s/N%d/R%d/%s/load%.3f/%s/rep%d",
                to_string(sim), to_string(scheduler), iterations,
                to_string(policy), ports, receivers, to_string(traffic),
                load, to_string(fault), repetition);
  if (sim == SimKind::kServe) {
    // Serving axes ride as a suffix so every legacy label stays
    // byte-identical across documents produced before and after serving.
    char sbuf[64];
    std::snprintf(sbuf, sizeof sbuf, "/C%lld/%s/T%d",
                  static_cast<long long>(clients), to_string(arrival),
                  tenants);
    return std::string(buf) + sbuf;
  }
  if (sim == SimKind::kTopo) {
    // Topology axes follow the same suffix rule as the serving axes.
    return std::string(buf) + "/" + topo::to_string(topology) + "/" +
           topo::to_string(flow_control) + "/" + topo::to_string(routing);
  }
  return buf;
}

std::size_t CampaignSpec::job_count() const {
  const std::size_t per_sim =
      schedulers.size() * iterations.size() * policies.size() * ports.size() *
      receivers.size() * traffics.size() * loads.size() * faults.size() *
      static_cast<std::size_t>(repetitions);
  std::size_t total = 0;
  for (SimKind sim : sims) {
    std::size_t extra = 1;
    if (sim == SimKind::kServe) extra = clients.size() * arrivals.size();
    if (sim == SimKind::kTopo)
      extra = topologies.size() * flow_controls.size() * routings.size();
    total += per_sim * extra;
  }
  return total;
}

std::vector<JobSpec> CampaignSpec::expand() const {
  OSMOSIS_REQUIRE(repetitions >= 1, "campaign needs repetitions >= 1");
  OSMOSIS_REQUIRE(job_count() > 0, "campaign grid is empty (an axis has "
                                   "no values)");
  std::vector<JobSpec> jobs;
  jobs.reserve(job_count());
  for (SimKind sim : sims)
    for (sw::SchedulerKind sched : schedulers)
      for (int iters : iterations)
        for (sw::FlpprPolicy policy : policies)
          for (int n : ports)
            for (int rx : receivers)
              for (TrafficKind traffic : traffics)
                for (double load : loads)
                  // The serving axes expand only for serve jobs; every
                  // other sim kind takes a single pass with clients = 0,
                  // so legacy grids keep their exact job order and seeds.
                  for (std::size_t ci = 0,
                                   ce = sim == SimKind::kServe
                                            ? clients.size()
                                            : std::size_t{1};
                       ci < ce; ++ci)
                  for (std::size_t ai = 0,
                                   ae = sim == SimKind::kServe
                                            ? arrivals.size()
                                            : std::size_t{1};
                       ai < ae; ++ai)
                  // The topology axes follow the same rule: they expand
                  // only for topo jobs, one pass everywhere else.
                  for (std::size_t ti = 0,
                                   te = sim == SimKind::kTopo
                                            ? topologies.size()
                                            : std::size_t{1};
                       ti < te; ++ti)
                  for (std::size_t fci = 0,
                                   fce = sim == SimKind::kTopo
                                             ? flow_controls.size()
                                             : std::size_t{1};
                       fci < fce; ++fci)
                  for (std::size_t ri = 0,
                                   re = sim == SimKind::kTopo
                                            ? routings.size()
                                            : std::size_t{1};
                       ri < re; ++ri)
                  for (FaultScenario fault : faults)
                    for (int rep = 0; rep < repetitions; ++rep) {
                      JobSpec j;
                      j.index = jobs.size();
                      j.sim = sim;
                      j.scheduler = sched;
                      j.iterations = iters;
                      j.policy = policy;
                      j.ports = n;
                      j.receivers = rx;
                      j.traffic = traffic;
                      j.mean_burst = mean_burst;
                      j.load = load;
                      j.fault = fault;
                      j.repetition = rep;
                      j.seed = derive_job_seed(campaign_seed, j.index);
                      j.warmup_slots = warmup_slots;
                      j.measure_slots = measure_slots;
                      if (sim == SimKind::kServe) {
                        j.clients = clients[ci];
                        j.arrival = arrivals[ai];
                        j.tenants = tenants;
                        OSMOSIS_REQUIRE(j.clients >= 1,
                                        "serve jobs need clients >= 1, got "
                                            << j.clients);
                        OSMOSIS_REQUIRE(
                            j.tenants >= 1 && j.tenants <= 64,
                            "serve jobs need 1..64 tenants, got "
                                << j.tenants);
                        OSMOSIS_REQUIRE(n >= 2,
                                        "serve jobs need >= 2 ports, got "
                                            << n);
                      }
                      if (sim == SimKind::kTopo) {
                        j.topology = topologies[ti];
                        j.flow_control = flow_controls[fci];
                        j.routing = routings[ri];
                        OSMOSIS_REQUIRE(
                            sched == sw::SchedulerKind::kIslip ||
                                sched == sw::SchedulerKind::kPim ||
                                sched == sw::SchedulerKind::kTdm ||
                                sched == sw::SchedulerKind::kWfa,
                            "topo jobs need an immediate-issue scheduler "
                            "(islip/pim/tdm/wfa), got "
                                << to_string(sched));
                        OSMOSIS_REQUIRE(
                            fault == FaultScenario::kNone ||
                                fault == FaultScenario::kAdapterStall ||
                                fault == FaultScenario::kSpineOutage,
                            "topo jobs accept only none/adapter_stall/"
                            "spine_outage fault scenarios, got "
                                << to_string(fault));
                      } else if (sim == SimKind::kFabric) {
                        OSMOSIS_REQUIRE(
                            sched == sw::SchedulerKind::kIslip ||
                                sched == sw::SchedulerKind::kPim ||
                                sched == sw::SchedulerKind::kTdm,
                            "fabric jobs need an immediate-issue scheduler "
                            "(islip/pim/tdm), got "
                                << to_string(sched));
                        OSMOSIS_REQUIRE(
                            fault == FaultScenario::kNone ||
                                fault == FaultScenario::kAdapterStall ||
                                fault == FaultScenario::kSpineOutage ||
                                fault == FaultScenario::kSpinePermanent,
                            "fabric jobs accept only none/adapter_stall/"
                            "spine_outage/spine_permanent fault scenarios, "
                            "got "
                                << to_string(fault));
                      } else {
                        OSMOSIS_REQUIRE(
                            fault != FaultScenario::kSpineOutage &&
                                fault != FaultScenario::kSpinePermanent,
                            "spine fault scenarios are fabric-only");
                        // Module-killing scenarios take down receiver 1 of
                        // egress 7 — they presume the dual-receiver design.
                        const bool kills_module =
                            fault == FaultScenario::kModuleOutage ||
                            fault == FaultScenario::kModulePermanent ||
                            fault == FaultScenario::kCombined;
                        OSMOSIS_REQUIRE(!kills_module || rx >= 2,
                                        "fault scenario "
                                            << to_string(fault)
                                            << " kills receiver 1 and needs "
                                               ">= 2 receivers, got "
                                            << rx);
                      }
                      jobs.push_back(j);
                    }
  return jobs;
}

}  // namespace osmosis::exec
