#include "src/exec/thread_pool.hpp"

#include <string>
#include <utility>

#include "src/prof/profiler.hpp"

namespace osmosis::exec {

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      // Label the worker's track in wall-clock trace exports; a no-op
      // cheap registration when the profiler never runs.
      prof::Profiler::instance().set_thread_name("worker-" +
                                                 std::to_string(i));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::vector<std::exception_ptr> ThreadPool::take_exceptions() {
  std::unique_lock<std::mutex> lock(mu_);
  return std::exchange(exceptions_, {});
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: the destructor promises
      // completion of everything submitted before it ran.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error) exceptions_.push_back(error);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace osmosis::exec
