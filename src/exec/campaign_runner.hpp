#pragma once
// Parallel campaign execution: expands a CampaignSpec, fans the jobs out
// over a ThreadPool, and collects one CampaignResult with per-job and
// aggregated views. Each job runs a whole simulator (telemetry enabled)
// and returns its metrics, its RunReport, and its raw measurement
// histograms; aggregation merges counters (mgmt::CounterRegistry::merge)
// and histograms (sim::Histogram::merge) serially in job-index order, so
// the emitted osmosis.campaign.v1 document is byte-identical at any
// thread count (wall-clock fields live in an optional "timing" section).
//
// Schema osmosis.campaign.v1:
//   {
//     "schema": "osmosis.campaign.v1",
//     "name": <campaign name>,
//     "campaign_seed": "0x<16 hex digits>",
//     "jobs": [ { "index", "label", axes..., "seed", "ok", "attempts",
//                 "error"[, "failure_class"][, "quarantined"],
//                 "metrics": {name: number},
//                 "histograms": {name: {count,mean,min,p50,p99,max}}
//                 [, "wall_ms", "timed_out"] }, ... ],
//     "aggregate": { "jobs", "failed", "counters": {...},
//                    "histograms": {"<sim>.<name>": summary} }
//     [, "quarantine": [ {"index","label","class","error"}, ... ] ]
//     [, "timing": { "wall_ms", "threads" } ]
//   }
//
// Failure handling (DESIGN.md §12): a job whose attempts fail with the
// *same* exception message twice in a row is classified deterministic
// and quarantined immediately (retrying a pure function of its seed
// cannot help); distinct messages are treated as transient and retried
// up to max_attempts with bounded exponential backoff. A job that
// overruns job_timeout_ms is cooperatively cancelled by the built-in
// executors (JobTimeout) and quarantined without a retry, so one
// wedged job cannot burn 2x its budget. Quarantined jobs land in the
// document's "quarantine" section (present only when non-empty, keeping
// clean campaigns byte-identical to earlier schema revisions).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/ckpt/ckpt.hpp"
#include "src/exec/campaign.hpp"
#include "src/mgmt/counters.hpp"
#include "src/sim/stats.hpp"
#include "src/telemetry/run_report.hpp"

namespace osmosis::exec {

/// Outcome of one grid point.
struct JobResult {
  JobSpec spec;
  bool ok = false;
  int attempts = 0;
  bool timed_out = false;  // exceeded RunnerOptions::job_timeout_ms
  // Pulled from the retry rotation: a deterministic failure (same
  // exception twice in a row) or a cancelled timeout. Quarantined jobs
  // are listed in the campaign document's "quarantine" section.
  bool quarantined = false;
  std::string failure_class;  // "" | "deterministic" | "transient" | "timeout"
  std::string error;       // last captured exception message
  // Scalar results, sorted by name for deterministic export. Keys vary
  // by simulator kind (e.g. "throughput", "mean_delay", "p99_delay",
  // "mean_grant_latency"; fault runs add recovery metrics).
  std::map<std::string, double> metrics;
  telemetry::RunReport report;
  // Raw histograms for exact aggregation (merged via Histogram::merge).
  std::map<std::string, sim::Histogram> raw_hists;
  double wall_ms = 0.0;
};

/// Kill-safe campaign checkpointing (DESIGN.md §10). With a non-empty
/// `dir`, each finished job writes `job_<index>.done.ckpt` (its full
/// JobResult) and, with `every > 0`, each running job writes
/// `job_<index>.state.ckpt` snapshots every `every` advance steps. A
/// rerun with `resume = true` loads done files verbatim, restores
/// in-flight jobs from their state files, and re-runs from scratch on
/// any unusable file (stderr warning) — so a SIGKILL at any point costs
/// work, never correctness: the final campaign JSON is byte-identical
/// to an uninterrupted run (timing fields excluded).
struct CheckpointPolicy {
  std::string dir;          // empty = checkpointing off
  std::uint64_t every = 0;  // advance steps between state snapshots;
                            // 0 = completed-job files only
  bool resume = false;      // consult existing done/state files first
  // Test hook: observes every state snapshot as it lands on disk.
  std::function<void(const std::string& path, std::uint64_t step)>
      on_checkpoint;
};

struct RunnerOptions {
  unsigned threads = 0;     // 0 = hardware_concurrency
  int max_attempts = 2;     // retries per job on a captured exception
  // Per-job wall-clock budget; 0 = no limit. The built-in executors
  // check it cooperatively between advance steps and abort the job with
  // JobTimeout => quarantine; a custom executor that overruns is only
  // flagged (it cannot be cancelled from outside).
  double job_timeout_ms = 0.0;
  // Sleep before retry k (k >= 2): retry_backoff_ms * 2^(k-2), capped at
  // 8x — bounded, so a transiently failing campaign still terminates
  // promptly. 0 = retry immediately.
  double retry_backoff_ms = 0.0;
  CheckpointPolicy checkpoint;
  // Test/extension hook: replaces the built-in job executor.
  std::function<JobResult(const JobSpec&)> executor;
  // Progress callback, invoked from worker threads as jobs finish
  // (guarded by an internal mutex; may be empty).
  std::function<void(const JobResult&)> on_job_done;
};

struct CampaignResult {
  static constexpr const char* kSchema = "osmosis.campaign.v1";

  std::string name;
  std::uint64_t campaign_seed = 0;
  unsigned threads_used = 0;
  std::vector<JobResult> jobs;  // in job-index order
  mgmt::CounterRegistry aggregate_counters;
  std::map<std::string, sim::Histogram> aggregate_hists;
  double wall_ms = 0.0;

  std::size_t failed_jobs() const;

  /// First job whose spec satisfies `pred`, or nullptr. The benches use
  /// this to pick grid points back out for their tables.
  const JobResult* find(const std::function<bool(const JobSpec&)>& pred) const;

  /// Serializes the osmosis.campaign.v1 document. `include_timing`
  /// false drops every wall-clock-derived field, leaving a document
  /// that is byte-identical across runs and thread counts.
  std::string to_json(int indent = 2, bool include_timing = true) const;
};

/// Thrown by the built-in executors when a job overruns its wall-clock
/// budget (checked cooperatively between advance steps). The campaign
/// runner quarantines the job instead of retrying it.
struct JobTimeout : std::runtime_error {
  explicit JobTimeout(const std::string& what) : std::runtime_error(what) {}
};

/// Built-in executor: builds and runs the simulator a JobSpec names.
/// Exposed so tests can execute single grid points without a pool.
/// `timeout_ms > 0` arms the cooperative watchdog (throws JobTimeout).
JobResult run_job(const JobSpec& spec, double timeout_ms = 0.0);

/// One simulator behind a uniform incremental interface — the unit the
/// checkpointing executor and the ckpt_verify replay tool drive.
class JobDriver {
 public:
  virtual ~JobDriver() = default;
  virtual bool advance() = 0;                   // one step; false = done
  virtual void save(ckpt::Writer& w) const = 0; // sim state chunks
  virtual void load(const ckpt::Reader& r) = 0;
  virtual JobResult finalize() = 0;  // call once, after advance() == false
};
std::unique_ptr<JobDriver> make_job_driver(const JobSpec& spec);

/// Checkpoint-file helpers (exposed for ckpt_verify and tests). Loaders
/// throw ckpt::Error on corruption or on a file written for a different
/// JobSpec; nothing is partially applied on failure.
void write_job_result_file(const JobResult& r, const std::string& path);
JobResult read_job_result_file(const JobSpec& expected,
                               const std::string& path);
JobSpec read_job_spec_chunk(const ckpt::Reader& r);
std::uint64_t read_job_progress(const ckpt::Reader& r);

/// CRC32 of a driver's full serialized state — the divergence probe
/// ckpt_verify compares between a restored run and a fresh replay.
std::uint32_t job_state_digest(const JobDriver& d);

/// Built-in executor with checkpointing: resumes from / writes
/// job_<index>.state.ckpt under `ck` (falls back to run_job when
/// checkpointing is off).
JobResult run_job_checkpointed(const JobSpec& spec,
                               const CheckpointPolicy& ck,
                               double timeout_ms = 0.0);

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions opts = {});

  /// Expands and executes the campaign; blocks until every job finished.
  CampaignResult run(const CampaignSpec& spec);

 private:
  JobResult execute_with_retry(const JobSpec& spec) const;

  RunnerOptions opts_;
};

}  // namespace osmosis::exec
