#pragma once
// Perf-regression gate over osmosis.campaign.v1 documents: matches jobs
// between a baseline and a candidate campaign by label and flags
//   - throughput-like metrics that dropped beyond the tolerance,
//   - latency-like metrics that rose beyond the tolerance (plus a small
//     absolute slack, so near-zero delays don't gate on dust),
//   - jobs that failed or disappeared in the candidate.
// The campaign_compare tool exits non-zero when any regression is found,
// which is what scripts/check.sh holds against the committed smoke
// baseline.

#include <cstdint>
#include <string>
#include <vector>

namespace osmosis::exec {

struct CompareOptions {
  double tolerance = 0.02;      // relative headroom on every gated metric
  double latency_slack = 0.5;   // absolute slack on latency metrics
};

struct Regression {
  std::string label;    // job label ("<campaign>" for document-level)
  std::string metric;   // gated metric, or "missing" / "job_failed"
  double baseline = 0.0;
  double candidate = 0.0;
};

struct CompareReport {
  std::size_t jobs_compared = 0;
  std::size_t metrics_compared = 0;
  std::vector<Regression> regressions;
  std::vector<std::string> notes;  // non-gating observations

  bool ok() const { return regressions.empty(); }
};

/// Parses both documents (aborts on schema mismatch) and compares.
CompareReport compare_campaigns(const std::string& baseline_json,
                                const std::string& candidate_json,
                                const CompareOptions& options = {});

/// Human-readable rendering of the report, one line per finding.
std::string describe(const CompareReport& report);

}  // namespace osmosis::exec
