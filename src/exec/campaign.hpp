#pragma once
// Declarative experiment campaigns: a CampaignSpec is a grid of axes
// (simulator kind, scheduler, FLPPR depth/policy, port count, receiver
// count, traffic pattern, offered load, fault scenario, repetition)
// expanded into a flat, deterministically ordered list of independent
// JobSpecs. Each job derives its RNG seed from (campaign_seed,
// job_index) through SplitMix64, so a campaign produces byte-identical
// results at any worker-thread count — the seed depends only on the
// job's position in the grid, never on execution order.
//
// This is the declarative layer under every figure-sweep bench
// (bench_fig6 / bench_fig7 / bench_failures / bench_campaign); the
// execution layer is campaign_runner.hpp.

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/openloop.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/sw/scheduler.hpp"
#include "src/topo/flow_control.hpp"
#include "src/topo/topology.hpp"

namespace osmosis::exec {

/// Which simulator executes a job.
enum class SimKind : std::uint8_t {
  kSwitch,       // sw::SwitchSim — slot-accurate single-stage switch
  kEventSwitch,  // sw::EventSwitchSim — event-driven, ns time base
  kFabric,       // fabric::FabricSim — two-stage leaf/spine fabric
  kServe,        // api::ServeSim — open-loop serving over the switch
  kTopo,         // topo::TopoSim — topology x flow-control zoo
};
const char* to_string(SimKind kind);

/// Traffic pattern axis.
enum class TrafficKind : std::uint8_t { kUniform, kBursty };
const char* to_string(TrafficKind kind);

/// Named mid-run fault scenarios (the bench_failures table as an axis).
/// Timing follows the bench convention: the window opens at
/// warmup + measure/4 and spans measure/4 slots.
enum class FaultScenario : std::uint8_t {
  kNone,
  kModuleOutage,      // switching module (7,1) dark, then revived
  kModulePermanent,   // module (7,1) dead for good; survivor carries it
  kFiberCut,          // broadcast fiber 3 cut, then spliced
  kGrantCorruption,   // 2% of grants dropped on the control path
  kBurstErrors,       // 1% FEC-uncorrectable arrivals on every link
  kAdapterStall,      // ingress adapter 12 stalls
  kCombined,          // overlapping mix of the above
  kSpineOutage,       // fabric only: spine 0 down, credit-FC backpressure
  kSpinePermanent,    // fabric only: spine 0 dead for good; adaptive
                      // routing + degraded-mode admission carry the run
};
const char* to_string(FaultScenario scenario);

/// Builds the FaultPlan for `scenario` given the run geometry.
faults::FaultPlan make_fault_plan(FaultScenario scenario,
                                  std::uint64_t warmup_slots,
                                  std::uint64_t measure_slots);

const char* to_string(sw::SchedulerKind kind);
const char* to_string(sw::FlpprPolicy policy);

/// One fully resolved grid point.
struct JobSpec {
  std::size_t index = 0;  // position in the expanded grid
  SimKind sim = SimKind::kSwitch;
  sw::SchedulerKind scheduler = sw::SchedulerKind::kFlppr;
  int iterations = 0;  // scheduler depth/iterations; 0 = kind default
  sw::FlpprPolicy policy = sw::FlpprPolicy::kEarliestFirst;
  int ports = 64;      // fabric: switch radix (hosts = radix^2/2)
  int receivers = 2;
  TrafficKind traffic = TrafficKind::kUniform;
  double mean_burst = 16.0;  // bursty traffic only
  double load = 0.5;
  FaultScenario fault = FaultScenario::kNone;
  int repetition = 0;
  std::uint64_t seed = 0;  // derived; see derive_job_seed
  std::uint64_t warmup_slots = 2'000;
  std::uint64_t measure_slots = 20'000;
  // Serving axes (kServe only; zero/default on every other sim kind so
  // legacy jobs keep their exact labels and checkpoint bytes).
  std::int64_t clients = 0;
  api::ArrivalKind arrival = api::ArrivalKind::kPoisson;
  int tenants = 4;
  // Topology axes (kTopo only; defaults everywhere else so legacy jobs
  // keep their exact labels and checkpoint bytes). For topo jobs
  // `ports` is the host count (32/128/512/2048 fit every generator).
  topo::TopoKind topology = topo::TopoKind::kFatTree;
  topo::FcKind flow_control = topo::FcKind::kCredit;
  topo::RouteKind routing = topo::RouteKind::kDestMod;

  /// Stable human/machine identifier carrying every axis value, e.g.
  /// "switch/flppr/K0/earliest/N64/R2/uniform/load0.700/none/rep0".
  /// Serve jobs append "/C<clients>/<arrival>/T<tenants>"; topo jobs
  /// append "/<topology>/<flow_control>/<routing>".
  /// campaign_compare matches jobs across documents by this label.
  std::string label() const;

  /// Checkpoint serialization: every axis value, so a resume can verify
  /// a state/done file belongs to the grid point it is about to skip.
  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, index);
    ckpt::field(a, sim);
    ckpt::field(a, scheduler);
    ckpt::field(a, iterations);
    ckpt::field(a, policy);
    ckpt::field(a, ports);
    ckpt::field(a, receivers);
    ckpt::field(a, traffic);
    ckpt::field(a, mean_burst);
    ckpt::field(a, load);
    ckpt::field(a, fault);
    ckpt::field(a, repetition);
    ckpt::field(a, seed);
    ckpt::field(a, warmup_slots);
    ckpt::field(a, measure_slots);
    ckpt::field(a, clients);
    ckpt::field(a, arrival);
    ckpt::field(a, tenants);
    ckpt::field(a, topology);
    ckpt::field(a, flow_control);
    ckpt::field(a, routing);
  }
};

/// SplitMix64-based per-job seed: mixes the campaign seed and the job
/// index through two finalizer steps. Depends only on (campaign_seed,
/// job_index) — never on thread count or execution order.
std::uint64_t derive_job_seed(std::uint64_t campaign_seed,
                              std::uint64_t job_index);

/// The declarative grid. expand() walks axes outermost-to-innermost in
/// declaration order below, assigning consecutive job indices.
struct CampaignSpec {
  std::string name = "campaign";
  std::vector<SimKind> sims = {SimKind::kSwitch};
  std::vector<sw::SchedulerKind> schedulers = {sw::SchedulerKind::kFlppr};
  std::vector<int> iterations = {0};
  std::vector<sw::FlpprPolicy> policies = {sw::FlpprPolicy::kEarliestFirst};
  std::vector<int> ports = {64};
  std::vector<int> receivers = {2};
  std::vector<TrafficKind> traffics = {TrafficKind::kUniform};
  double mean_burst = 16.0;
  std::vector<double> loads = {0.5};
  // Serving axes, iterated only for SimKind::kServe entries (other sim
  // kinds take one pass with clients = 0, so a mixed grid never
  // duplicates legacy jobs).
  std::vector<std::int64_t> clients = {4096};
  std::vector<api::ArrivalKind> arrivals = {api::ArrivalKind::kPoisson};
  int tenants = 4;
  // Topology axes, iterated only for SimKind::kTopo entries (same
  // single-pass rule as the serving axes above).
  std::vector<topo::TopoKind> topologies = {topo::TopoKind::kFatTree};
  std::vector<topo::FcKind> flow_controls = {topo::FcKind::kCredit};
  std::vector<topo::RouteKind> routings = {topo::RouteKind::kDestMod};
  std::vector<FaultScenario> faults = {FaultScenario::kNone};
  int repetitions = 1;
  std::uint64_t campaign_seed = 0xCA3B'A167ULL;
  std::uint64_t warmup_slots = 2'000;
  std::uint64_t measure_slots = 20'000;

  std::size_t job_count() const;

  /// Expands the grid into jobs with derived seeds. Validates axis
  /// compatibility (e.g. switch-only fault scenarios never paired with
  /// the fabric simulator) via OSMOSIS_REQUIRE.
  std::vector<JobSpec> expand() const;
};

}  // namespace osmosis::exec
