#include "src/exec/campaign_compare.hpp"

#include <map>
#include <sstream>

#include "src/telemetry/json.hpp"
#include "src/util/log.hpp"

namespace osmosis::exec {

namespace {

// Gated metric classes. Throughput-like: lower candidate is a
// regression. Latency-like: higher candidate is a regression. Anything
// else (counters, verdict flags, config echoes) is informational only.
bool is_throughput_metric(const std::string& name) {
  return name == "throughput" || name == "min_window_throughput";
}

bool is_latency_metric(const std::string& name) {
  return name.rfind("mean_delay", 0) == 0 || name.rfind("p99_delay", 0) == 0 ||
         name.rfind("mean_grant_latency", 0) == 0 ||
         name.rfind("p99_grant_latency", 0) == 0;
}

struct JobView {
  bool ok = false;
  std::map<std::string, double> metrics;
};

std::map<std::string, JobView> index_jobs(const telemetry::JsonValue& doc) {
  std::map<std::string, JobView> out;
  for (const auto& job : doc.at("jobs").array) {
    JobView v;
    v.ok = job.at("ok").boolean;
    for (const auto& [name, value] : job.at("metrics").object)
      v.metrics[name] = value.number;
    out[job.at("label").str] = v;
  }
  return out;
}

telemetry::JsonValue parse_campaign(const std::string& text,
                                    const char* which) {
  const telemetry::JsonValue doc = telemetry::json_parse(text);
  OSMOSIS_REQUIRE(doc.is_object() && doc.has("schema"),
                  which << " document is not a campaign JSON object");
  OSMOSIS_REQUIRE(doc.at("schema").str == "osmosis.campaign.v1",
                  which << " document has schema '" << doc.at("schema").str
                        << "', expected osmosis.campaign.v1");
  return doc;
}

}  // namespace

CompareReport compare_campaigns(const std::string& baseline_json,
                                const std::string& candidate_json,
                                const CompareOptions& options) {
  const auto base_doc = parse_campaign(baseline_json, "baseline");
  const auto cand_doc = parse_campaign(candidate_json, "candidate");
  const auto base = index_jobs(base_doc);
  const auto cand = index_jobs(cand_doc);

  CompareReport report;
  for (const auto& [label, b] : base) {
    auto it = cand.find(label);
    if (it == cand.end()) {
      report.regressions.push_back({label, "missing", 0.0, 0.0});
      continue;
    }
    const JobView& c = it->second;
    ++report.jobs_compared;
    if (b.ok && !c.ok) {
      report.regressions.push_back({label, "job_failed", 1.0, 0.0});
      continue;
    }
    for (const auto& [metric, bv] : b.metrics) {
      auto mc = c.metrics.find(metric);
      if (mc == c.metrics.end()) continue;
      const double cv = mc->second;
      if (is_throughput_metric(metric)) {
        ++report.metrics_compared;
        if (cv < bv * (1.0 - options.tolerance))
          report.regressions.push_back({label, metric, bv, cv});
      } else if (is_latency_metric(metric)) {
        ++report.metrics_compared;
        if (cv > bv * (1.0 + options.tolerance) + options.latency_slack)
          report.regressions.push_back({label, metric, bv, cv});
      }
    }
  }
  for (const auto& [label, c] : cand) {
    (void)c;
    if (!base.count(label))
      report.notes.push_back("candidate adds job not in baseline: " + label);
  }
  return report;
}

std::string describe(const CompareReport& report) {
  std::ostringstream os;
  os << "compared " << report.jobs_compared << " jobs, "
     << report.metrics_compared << " gated metrics\n";
  for (const auto& r : report.regressions) {
    if (r.metric == "missing") {
      os << "REGRESSION " << r.label << ": job missing from candidate\n";
    } else if (r.metric == "job_failed") {
      os << "REGRESSION " << r.label << ": job failed in candidate\n";
    } else {
      os << "REGRESSION " << r.label << ": " << r.metric << " "
         << r.baseline << " -> " << r.candidate << "\n";
    }
  }
  for (const auto& n : report.notes) os << "note: " << n << "\n";
  os << (report.ok() ? "OK: no regressions" : "FAIL") << "\n";
  return os.str();
}

}  // namespace osmosis::exec
