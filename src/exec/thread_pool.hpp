#pragma once
// Fixed-size worker pool for the campaign runner: a mutex+condvar job
// queue drained by `threads` workers. Jobs are plain std::function<void()>;
// an exception escaping a job is captured (std::exception_ptr) rather
// than terminating the process, and handed back via take_exceptions().
//
// The pool is deliberately minimal — no futures, no work stealing, no
// priorities. Campaign jobs are coarse (whole simulator runs, tens of
// milliseconds to seconds each), so a single locked deque is nowhere
// near contended; determinism comes from the jobs themselves (each owns
// its seed and writes only its own result slot), not from scheduling
// order.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace osmosis::exec {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 picks hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Waits for all queued and running jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a job. Safe from any thread, including from inside a job.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Exceptions that escaped jobs since the last call, in completion
  /// order. Empty in a healthy run.
  std::vector<std::exception_ptr> take_exceptions();

  /// The worker count a default-constructed pool would use.
  static unsigned default_threads();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs / stop
  std::condition_variable idle_cv_;   // wait_idle waits for quiescence
  std::deque<std::function<void()>> queue_;
  std::vector<std::exception_ptr> exceptions_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace osmosis::exec
