#include "src/sim/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/log.hpp"

namespace osmosis::sim {

// ---- BernoulliUniform ------------------------------------------------------

BernoulliUniform::BernoulliUniform(int ports, double load, Rng rng)
    : ports_(ports), load_(load), rng_(rng) {
  OSMOSIS_REQUIRE(ports_ >= 1, "need at least one port");
  OSMOSIS_REQUIRE(load_ >= 0.0 && load_ <= 1.0, "load out of [0,1]: " << load_);
}

bool BernoulliUniform::sample(int /*input*/, Arrival& out) {
  if (!rng_.bernoulli(load_)) return false;
  out.dst = static_cast<int>(rng_.uniform_int(static_cast<std::uint64_t>(ports_)));
  out.cls = TrafficClass::kData;
  return true;
}

// ---- BurstyOnOff -----------------------------------------------------------

BurstyOnOff::BurstyOnOff(int ports, double load, double mean_burst, Rng rng)
    : ports_(ports),
      load_(load),
      mean_burst_(mean_burst),
      state_(static_cast<std::size_t>(ports)),
      rng_(rng) {
  OSMOSIS_REQUIRE(ports_ >= 1, "need at least one port");
  OSMOSIS_REQUIRE(load_ >= 0.0 && load_ < 1.0, "bursty load must be in [0,1)");
  OSMOSIS_REQUIRE(mean_burst_ >= 1.0, "mean burst length must be >= 1 cell");
  // In the on state one cell is emitted per slot; a burst ends after each
  // cell with probability q, so mean burst length = 1/q.
  p_on_to_off_ = 1.0 / mean_burst_;
  // Long-run on-fraction must equal `load`. The off state is left with
  // per-slot probability p, so the mean gap (possibly zero slots —
  // back-to-back bursts may merge) is (1-p)/p. Solving
  //   load = B / (B + gap)  with  gap = B(1-load)/load
  // gives p = 1 / (1 + gap), which stays in (0, 1] for any load < 1.
  const double gap = mean_burst_ * (1.0 - load_) / std::max(load_, 1e-12);
  p_off_to_on_ = load_ > 0.0 ? 1.0 / (1.0 + gap) : 0.0;
}

bool BurstyOnOff::sample(int input, Arrival& out) {
  OSMOSIS_REQUIRE(input >= 0 && input < ports_, "input out of range");
  PortState& st = state_[static_cast<std::size_t>(input)];
  if (!st.on) {
    if (!rng_.bernoulli(p_off_to_on_)) return false;
    st.on = true;
    st.dst = static_cast<int>(
        rng_.uniform_int(static_cast<std::uint64_t>(ports_)));
  }
  out.dst = st.dst;
  out.cls = TrafficClass::kData;
  if (rng_.bernoulli(p_on_to_off_)) st.on = false;  // burst ends after cell
  return true;
}

// ---- Hotspot ---------------------------------------------------------------

Hotspot::Hotspot(int ports, double load, int hot_output, double hot_fraction,
                 Rng rng)
    : ports_(ports),
      load_(load),
      hot_output_(hot_output),
      hot_fraction_(hot_fraction),
      rng_(rng) {
  OSMOSIS_REQUIRE(ports_ >= 1, "need at least one port");
  OSMOSIS_REQUIRE(hot_output_ >= 0 && hot_output_ < ports_,
                  "hot output out of range");
  OSMOSIS_REQUIRE(hot_fraction_ >= 0.0 && hot_fraction_ <= 1.0,
                  "hot fraction out of [0,1]");
}

bool Hotspot::sample(int /*input*/, Arrival& out) {
  if (!rng_.bernoulli(load_)) return false;
  if (rng_.bernoulli(hot_fraction_)) {
    out.dst = hot_output_;
  } else {
    out.dst = static_cast<int>(
        rng_.uniform_int(static_cast<std::uint64_t>(ports_)));
  }
  out.cls = TrafficClass::kData;
  return true;
}

// ---- Permutation -----------------------------------------------------------

Permutation::Permutation(int ports, double load, std::vector<int> perm,
                         Rng rng)
    : ports_(ports), load_(load), perm_(std::move(perm)), rng_(rng) {
  OSMOSIS_REQUIRE(static_cast<int>(perm_.size()) == ports_,
                  "permutation size mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(ports_), false);
  for (int d : perm_) {
    OSMOSIS_REQUIRE(d >= 0 && d < ports_, "permutation entry out of range");
    OSMOSIS_REQUIRE(!seen[static_cast<std::size_t>(d)],
                    "permutation entry repeated: " << d);
    seen[static_cast<std::size_t>(d)] = true;
  }
}

Permutation Permutation::diagonal(int ports, double load, int shift,
                                  Rng rng) {
  std::vector<int> perm(static_cast<std::size_t>(ports));
  for (int i = 0; i < ports; ++i)
    perm[static_cast<std::size_t>(i)] = (i + shift) % ports;
  return Permutation(ports, load, std::move(perm), rng);
}

bool Permutation::sample(int input, Arrival& out) {
  OSMOSIS_REQUIRE(input >= 0 && input < ports_, "input out of range");
  if (!rng_.bernoulli(load_)) return false;
  out.dst = perm_[static_cast<std::size_t>(input)];
  out.cls = TrafficClass::kData;
  return true;
}

// ---- BimodalHpc ------------------------------------------------------------

BimodalHpc::BimodalHpc(int ports, double load, double control_fraction,
                       Rng rng)
    : ports_(ports),
      load_(load),
      control_fraction_(control_fraction),
      rng_(rng) {
  OSMOSIS_REQUIRE(ports_ >= 1, "need at least one port");
  OSMOSIS_REQUIRE(control_fraction_ >= 0.0 && control_fraction_ <= 1.0,
                  "control fraction out of [0,1]");
}

bool BimodalHpc::sample(int /*input*/, Arrival& out) {
  if (!rng_.bernoulli(load_)) return false;
  out.dst = static_cast<int>(
      rng_.uniform_int(static_cast<std::uint64_t>(ports_)));
  out.cls = rng_.bernoulli(control_fraction_) ? TrafficClass::kControl
                                              : TrafficClass::kData;
  return true;
}

// ---- factories -------------------------------------------------------------

std::unique_ptr<TrafficGen> make_uniform(int ports, double load,
                                         std::uint64_t seed) {
  return std::make_unique<BernoulliUniform>(ports, load, Rng(seed));
}

std::unique_ptr<TrafficGen> make_bursty(int ports, double load,
                                        double mean_burst,
                                        std::uint64_t seed) {
  return std::make_unique<BurstyOnOff>(ports, load, mean_burst, Rng(seed));
}

std::unique_ptr<TrafficGen> make_hotspot(int ports, double load,
                                         int hot_output, double hot_fraction,
                                         std::uint64_t seed) {
  return std::make_unique<Hotspot>(ports, load, hot_output, hot_fraction,
                                   Rng(seed));
}

}  // namespace osmosis::sim
