#include "src/sim/event_queue.hpp"

#include <memory>
#include <utility>

#include "src/util/log.hpp"

namespace osmosis::sim {

void EventQueue::schedule_at(double when_ns, EventFn fn) {
  OSMOSIS_REQUIRE(when_ns >= now_ns_, "cannot schedule into the past: "
                                          << when_ns << " < " << now_ns_);
  heap_.push(Entry{when_ns, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(double delay_ns, EventFn fn) {
  OSMOSIS_REQUIRE(delay_ns >= 0.0, "negative delay: " << delay_ns);
  schedule_at(now_ns_ + delay_ns, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // Move the handler out before popping, then fire after the queue is in
  // a consistent state (handlers may schedule new events).
  Entry e = heap_.top();
  heap_.pop();
  now_ns_ = e.time_ns;
  ++fired_;
  e.fn();
  return true;
}

std::uint64_t EventQueue::run_until(double limit_ns) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().time_ns <= limit_ns) {
    step();
    ++n;
  }
  // Advance the clock to the horizon even if nothing fired exactly there.
  if (now_ns_ < limit_ns) now_ns_ = limit_ns;
  return n;
}

std::uint64_t EventQueue::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

// ---- PeriodicProcess -------------------------------------------------------

PeriodicProcess::PeriodicProcess(EventQueue& q, double start_ns,
                                 double period_ns, std::function<void()> body)
    : q_(q),
      period_ns_(period_ns),
      body_(std::move(body)),
      alive_(std::make_shared<bool>(true)) {
  OSMOSIS_REQUIRE(period_ns_ > 0.0, "period must be positive");
  arm(start_ns);
}

PeriodicProcess::~PeriodicProcess() { cancel(); }

void PeriodicProcess::cancel() { *alive_ = false; }

bool PeriodicProcess::active() const { return *alive_; }

void PeriodicProcess::arm(double when_ns) {
  std::weak_ptr<bool> watch = alive_;
  q_.schedule_at(when_ns, [this, watch, when_ns] {
    auto alive = watch.lock();
    if (!alive || !*alive) return;
    body_();
    arm(when_ns + period_ns_);
  });
}

}  // namespace osmosis::sim
