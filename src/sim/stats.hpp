#pragma once
// Statistics collection for the simulation experiments: running
// mean/variance, latency histograms with percentiles, throughput
// counters, and an in-order-delivery checker (the paper's Table 1
// requires packet ordering maintained between in/output pairs).

#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::sim {

/// Welford running mean / variance / min / max accumulator.
class MeanVar {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void merge(const MeanVar& other);

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, n_);
    ckpt::field(a, mean_);
    ckpt::field(a, m2_);
    ckpt::field(a, min_);
    ckpt::field(a, max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over non-negative values with hybrid linear/geometric bins:
/// exact unit bins up to `linear_limit`, then geometrically growing bins.
/// Suited to latency distributions whose tail spans orders of magnitude.
class Histogram {
 public:
  explicit Histogram(double linear_limit = 64.0, double growth = 1.25);

  void add(double x);

  std::uint64_t count() const { return total_; }
  double mean() const { return mv_.mean(); }
  double min() const { return mv_.min(); }
  double max() const { return mv_.max(); }

  /// Quantile via bin interpolation; q in [0, 1]. Returns 0 when empty.
  /// q = 0 and q = 1 return the exact observed min/max rather than
  /// bin-interpolated bounds.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }
  double p9999() const { return quantile(0.9999); }

  /// Accumulates another histogram of the *same bin shape* (equal
  /// linear_limit and growth; enforced). Bins add element-wise and the
  /// out-of-band extremes/mean merge exactly, so sharded collection
  /// followed by merge() reports the same count/mean/min/max/quantiles
  /// as one histogram fed every sample — the campaign runner's
  /// aggregation invariant.
  void merge(const Histogram& other);

  double linear_limit() const { return linear_limit_; }
  double growth() const { return growth_; }

  /// Bin shape (linear_limit, growth) is construction-time config and is
  /// re-checked on load rather than overwritten, so a snapshot can never
  /// graft bins onto a histogram of a different shape.
  template <class Ar>
  void io_state(Ar& a) {
    double limit = linear_limit_;
    double growth = growth_;
    ckpt::field(a, limit);
    ckpt::field(a, growth);
    if constexpr (Ar::kLoading) {
      if (limit != linear_limit_ || growth != growth_)
        throw ckpt::Error("histogram bin shape mismatch in checkpoint");
    }
    ckpt::field(a, bins_);
    ckpt::field(a, total_);
    ckpt::field(a, mv_);
  }

 private:
  std::size_t bin_for(double x) const;
  std::pair<double, double> bin_bounds(std::size_t b) const;

  double linear_limit_;
  double growth_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  MeanVar mv_;
};

/// Counts delivered payload over elapsed slots to yield normalized
/// throughput (fraction of line rate actually used).
class ThroughputMeter {
 public:
  void add_delivery(double payload_units = 1.0) { delivered_ += payload_units; }
  void advance_slots(std::uint64_t slots, std::uint64_t lines) {
    capacity_ += static_cast<double>(slots) * static_cast<double>(lines);
  }
  double delivered() const { return delivered_; }
  /// Delivered / offered-capacity; 0 when no capacity elapsed.
  double utilization() const {
    return capacity_ > 0.0 ? delivered_ / capacity_ : 0.0;
  }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, delivered_);
    ckpt::field(a, capacity_);
  }

 private:
  double delivered_ = 0.0;
  double capacity_ = 0.0;
};

/// Detects out-of-order delivery per (source, destination) flow using
/// monotonically increasing per-flow sequence numbers.
class ReorderDetector {
 public:
  /// Records delivery of sequence number `seq` on flow (src, dst).
  /// Returns true if this delivery was out of order.
  bool deliver(int src, int dst, std::uint64_t seq);

  std::uint64_t out_of_order() const { return out_of_order_; }
  std::uint64_t total() const { return total_; }
  double reorder_fraction() const {
    return total_ ? static_cast<double>(out_of_order_) /
                        static_cast<double>(total_)
                  : 0.0;
  }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, last_seen_);
    ckpt::field(a, out_of_order_);
    ckpt::field(a, total_);
  }

 private:
  std::map<std::pair<int, int>, std::uint64_t> last_seen_;
  std::uint64_t out_of_order_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace osmosis::sim
