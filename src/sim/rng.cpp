#include "src/sim/rng.hpp"

#include <cmath>
#include <numeric>

#include "src/util/log.hpp"

namespace osmosis::sim {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  OSMOSIS_REQUIRE(n >= 1, "uniform_int needs n >= 1");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) {
  OSMOSIS_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range: " << p);
  return uniform() < p;
}

std::uint64_t Rng::geometric(double p) {
  OSMOSIS_REQUIRE(p > 0.0 && p <= 1.0, "geometric needs p in (0,1]");
  if (p == 1.0) return 0;
  const double u = uniform();
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

double Rng::exponential(double mean) {
  OSMOSIS_REQUIRE(mean > 0.0, "exponential needs mean > 0");
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

std::vector<int> Rng::permutation(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  shuffle(v);
  return v;
}

Rng Rng::split() {
  Rng child(0);
  child.s_ = {next(), next(), next(), next()};
  // Guard against an (astronomically unlikely) all-zero child state.
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace osmosis::sim
