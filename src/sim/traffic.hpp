#pragma once
// Synthetic traffic generators for switch and fabric experiments.
//
// The paper evaluates with the classic input-queued-switch workloads of
// its era ([17], [22]): i.i.d. Bernoulli uniform arrivals, bursty (on/off)
// traffic, and non-uniform patterns, plus the HPC-specific bimodal mix of
// short control packets and long data packets (§III). Each generator
// produces, per input port and per cell slot, either "no arrival" or a
// destination port (with a traffic class for the bimodal mix).

#include <cstdint>
#include <memory>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/sim/rng.hpp"

namespace osmosis::sim {

/// Traffic class for the paper's bimodal short-control / long-data mix.
enum class TrafficClass : std::uint8_t { kControl = 0, kData = 1 };

/// One arrival at an input port within a slot.
struct Arrival {
  int dst = -1;  // destination output port
  TrafficClass cls = TrafficClass::kData;
  std::uint64_t tag = 0;  // opaque tag carried end to end (message id)
};

/// Interface: per-slot, per-input arrival process for an N-port device.
class TrafficGen {
 public:
  virtual ~TrafficGen() = default;

  /// Number of ports this generator was built for.
  virtual int ports() const = 0;

  /// Offered load per input in cells/slot (long-run average).
  virtual double offered_load() const = 0;

  /// Samples the arrival (if any) at `input` for the next slot.
  /// Returns true and fills `out` when a cell arrives.
  virtual bool sample(int input, Arrival& out) = 0;

  /// Checkpoint hooks. Generators persist only mutable state (RNG, burst
  /// state); construction parameters are supplied by re-building the
  /// generator from the same config before load_state. The default
  /// throws: a generator that carries hidden state (e.g. the host
  /// message-sim adapter) must either implement these or stay out of
  /// checkpointed runs.
  virtual void save_state(ckpt::Sink&) const {
    throw ckpt::Error("traffic generator does not support checkpointing");
  }
  virtual void load_state(ckpt::Source&) {
    throw ckpt::Error("traffic generator does not support checkpointing");
  }
};

/// i.i.d. Bernoulli arrivals, destinations uniform over all outputs.
class BernoulliUniform final : public TrafficGen {
 public:
  BernoulliUniform(int ports, double load, Rng rng);

  int ports() const override { return ports_; }
  double offered_load() const override { return load_; }
  bool sample(int input, Arrival& out) override;

  void save_state(ckpt::Sink& s) const override {
    ckpt::field(s, const_cast<Rng&>(rng_));
  }
  void load_state(ckpt::Source& s) override { ckpt::field(s, rng_); }

 private:
  int ports_;
  double load_;
  Rng rng_;
};

/// Markov on/off bursty traffic: geometrically distributed bursts of
/// cells to a single destination, separated by geometrically distributed
/// idle gaps. `mean_burst` is the average burst length in cells; the
/// on/off probabilities are derived so the long-run load matches `load`.
class BurstyOnOff final : public TrafficGen {
 public:
  BurstyOnOff(int ports, double load, double mean_burst, Rng rng);

  int ports() const override { return ports_; }
  double offered_load() const override { return load_; }
  double mean_burst() const { return mean_burst_; }
  bool sample(int input, Arrival& out) override;

  void save_state(ckpt::Sink& s) const override {
    const_cast<BurstyOnOff*>(this)->io_traffic(s);
  }
  void load_state(ckpt::Source& s) override { io_traffic(s); }

 private:
  struct PortState {
    bool on = false;
    int dst = 0;

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, on);
      ckpt::field(a, dst);
    }
  };

  template <class Ar>
  void io_traffic(Ar& a) {
    ckpt::field(a, state_);
    ckpt::field(a, rng_);
  }

  int ports_;
  double load_;
  double mean_burst_;
  double p_off_to_on_;  // start a burst
  double p_on_to_off_;  // end the current burst (after each cell)
  std::vector<PortState> state_;
  Rng rng_;
};

/// Non-uniform "hotspot": a fraction `hot_fraction` of each input's
/// traffic targets output `hot_output`; the remainder is uniform.
class Hotspot final : public TrafficGen {
 public:
  Hotspot(int ports, double load, int hot_output, double hot_fraction,
          Rng rng);

  int ports() const override { return ports_; }
  double offered_load() const override { return load_; }
  bool sample(int input, Arrival& out) override;

  void save_state(ckpt::Sink& s) const override {
    ckpt::field(s, const_cast<Rng&>(rng_));
  }
  void load_state(ckpt::Source& s) override { ckpt::field(s, rng_); }

 private:
  int ports_;
  double load_;
  int hot_output_;
  double hot_fraction_;
  Rng rng_;
};

/// Fixed permutation traffic: input i always sends to perm[i]. The
/// friendliest possible pattern for a crossbar (no output contention) —
/// used to measure the floor of the scheduling latency.
class Permutation final : public TrafficGen {
 public:
  Permutation(int ports, double load, std::vector<int> perm, Rng rng);

  /// Convenience: shifted-diagonal permutation dst = (i + shift) mod N.
  static Permutation diagonal(int ports, double load, int shift, Rng rng);

  int ports() const override { return ports_; }
  double offered_load() const override { return load_; }
  bool sample(int input, Arrival& out) override;

  void save_state(ckpt::Sink& s) const override {
    ckpt::field(s, const_cast<Rng&>(rng_));
  }
  void load_state(ckpt::Source& s) override { ckpt::field(s, rng_); }

 private:
  int ports_;
  double load_;
  std::vector<int> perm_;
  Rng rng_;
};

/// The paper's bimodal HPC mix: short control packets (latency critical)
/// plus long data packets (bandwidth critical). `control_fraction` of
/// arrivals are control-class; destinations are uniform for both.
class BimodalHpc final : public TrafficGen {
 public:
  BimodalHpc(int ports, double load, double control_fraction, Rng rng);

  int ports() const override { return ports_; }
  double offered_load() const override { return load_; }
  bool sample(int input, Arrival& out) override;

  void save_state(ckpt::Sink& s) const override {
    ckpt::field(s, const_cast<Rng&>(rng_));
  }
  void load_state(ckpt::Source& s) override { ckpt::field(s, rng_); }

 private:
  int ports_;
  double load_;
  double control_fraction_;
  Rng rng_;
};

/// Factory helpers for the bench harnesses.
std::unique_ptr<TrafficGen> make_uniform(int ports, double load,
                                         std::uint64_t seed);
std::unique_ptr<TrafficGen> make_bursty(int ports, double load,
                                        double mean_burst,
                                        std::uint64_t seed);
std::unique_ptr<TrafficGen> make_hotspot(int ports, double load,
                                         int hot_output, double hot_fraction,
                                         std::uint64_t seed);

}  // namespace osmosis::sim
