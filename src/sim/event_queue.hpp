#pragma once
// Discrete-event simulation kernel. Time is double nanoseconds. Events
// with equal timestamps fire in scheduling (FIFO) order, which keeps
// multi-actor protocols (request/grant, flow control) deterministic.
//
// The OSMOSIS reproduction uses two simulation styles:
//   * slot-synchronous loops for single-stage crossbar studies (the cell
//     cycle is the natural clock — see sw::SwitchSim), and
//   * this event kernel for anything with heterogeneous delays: cable
//     time-of-flight, multistage fabrics, ARQ timers.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace osmosis::sim {

/// Event handler; fires once at its scheduled time.
using EventFn = std::function<void()>;

/// Priority-queue based event scheduler.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when_ns` (must be >= now()).
  void schedule_at(double when_ns, EventFn fn);

  /// Schedules `fn` at now() + delay_ns (delay >= 0).
  void schedule_in(double delay_ns, EventFn fn);

  /// Current simulation time (time of the most recently fired event).
  double now() const { return now_ns_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t fired() const { return fired_; }

  /// Fires the single earliest event. Returns false if none pending.
  bool step();

  /// Runs until the queue drains or `limit_ns` is passed (events with
  /// time > limit_ns remain pending). Returns the number fired.
  std::uint64_t run_until(double limit_ns);

  /// Runs until the queue drains entirely.
  std::uint64_t run();

 private:
  struct Entry {
    double time_ns;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time_ns != b.time_ns) return a.time_ns > b.time_ns;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ns_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
};

/// Convenience: a periodic process hooked to an EventQueue. Calls `body`
/// every `period_ns` starting at `start_ns`, until cancel() or the queue
/// stops being run.
class PeriodicProcess {
 public:
  PeriodicProcess(EventQueue& q, double start_ns, double period_ns,
                  std::function<void()> body);
  ~PeriodicProcess();

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void cancel();
  bool active() const;

 private:
  void arm(double when_ns);

  EventQueue& q_;
  double period_ns_;
  std::function<void()> body_;
  // Shared liveness flag: pending closures check it before firing, so
  // cancel() (or destruction) safely disarms already-queued events.
  std::shared_ptr<bool> alive_;
};

}  // namespace osmosis::sim
