#pragma once
// Deterministic pseudo-random number generation for the simulation
// kernel. We use xoshiro256** — fast, high quality, and trivially
// seedable so every experiment is reproducible from a single seed.

#include <array>
#include <cstdint>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::sim {

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// next output. This is the generator xoshiro seeding uses internally;
/// it is exposed so seed-derivation schemes (per-port streams, campaign
/// job seeds) share one well-tested mixing function.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator (Blackman & Vigna). Satisfies the essentials of
/// UniformRandomBitGenerator so it can also feed <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64, which is the
  /// recommended way to initialize xoshiro state (avoids all-zero state).
  explicit Rng(std::uint64_t seed = 0x05051112'2005ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  std::uint64_t next();
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform integer in [0, n) for n >= 1 (unbiased via rejection).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Geometric: number of failures before first success, success prob p
  /// in (0, 1]. Mean (1-p)/p.
  std::uint64_t geometric(double p);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of {0, .., n-1}.
  std::vector<int> permutation(int n);

  /// Derives an independent child generator (for per-port streams).
  Rng split();

  /// Checkpoint serialization: the four xoshiro state words are the
  /// entire generator state.
  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, s_);
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace osmosis::sim
