#include "src/sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/log.hpp"

namespace osmosis::sim {

// ---- MeanVar ---------------------------------------------------------------

void MeanVar::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double MeanVar::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double MeanVar::stddev() const { return std::sqrt(variance()); }

void MeanVar::merge(const MeanVar& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(double linear_limit, double growth)
    : linear_limit_(linear_limit), growth_(growth) {
  OSMOSIS_REQUIRE(linear_limit_ >= 1.0, "linear_limit must be >= 1");
  OSMOSIS_REQUIRE(growth_ > 1.0, "growth must be > 1");
}

std::size_t Histogram::bin_for(double x) const {
  if (x < linear_limit_)
    return static_cast<std::size_t>(std::max(0.0, x));
  // Geometric region: bin index grows with log(x / linear_limit).
  const std::size_t lin_bins = static_cast<std::size_t>(linear_limit_);
  const double g = std::log(x / linear_limit_) / std::log(growth_);
  return lin_bins + static_cast<std::size_t>(g);
}

std::pair<double, double> Histogram::bin_bounds(std::size_t b) const {
  const std::size_t lin_bins = static_cast<std::size_t>(linear_limit_);
  if (b < lin_bins)
    return {static_cast<double>(b), static_cast<double>(b + 1)};
  const double lo =
      linear_limit_ * std::pow(growth_, static_cast<double>(b - lin_bins));
  return {lo, lo * growth_};
}

void Histogram::add(double x) {
  OSMOSIS_REQUIRE(x >= 0.0 && std::isfinite(x),
                  "histogram sample must be finite and >= 0, got " << x);
  const std::size_t b = bin_for(x);
  if (b >= bins_.size()) bins_.resize(b + 1, 0);
  ++bins_[b];
  ++total_;
  mv_.add(x);
}

void Histogram::merge(const Histogram& other) {
  OSMOSIS_REQUIRE(linear_limit_ == other.linear_limit_ &&
                      growth_ == other.growth_,
                  "histogram merge requires identical bin shape: ("
                      << linear_limit_ << ", " << growth_ << ") vs ("
                      << other.linear_limit_ << ", " << other.growth_ << ")");
  if (other.bins_.size() > bins_.size()) bins_.resize(other.bins_.size(), 0);
  for (std::size_t b = 0; b < other.bins_.size(); ++b)
    bins_[b] += other.bins_[b];
  total_ += other.total_;
  mv_.merge(other.mv_);
}

double Histogram::quantile(double q) const {
  OSMOSIS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]: " << q);
  if (total_ == 0) return 0.0;
  // The distribution's exact extremes are tracked out-of-band; bin
  // interpolation would return the (coarser) bin edges instead.
  if (q == 0.0) return mv_.min();
  if (q == 1.0) return mv_.max();
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    const double next = cum + static_cast<double>(bins_[b]);
    if (next >= target && bins_[b] > 0) {
      const auto [lo, hi] = bin_bounds(b);
      const double frac =
          (target - cum) / static_cast<double>(bins_[b]);  // within-bin pos
      // Interpolation works on bin bounds, which in the geometric region
      // can stretch past the actual extremes; never report a quantile
      // outside the observed range.
      return std::clamp(lo + frac * (hi - lo), mv_.min(), mv_.max());
    }
    cum = next;
  }
  return mv_.max();
}

// ---- ReorderDetector -------------------------------------------------------

bool ReorderDetector::deliver(int src, int dst, std::uint64_t seq) {
  ++total_;
  auto [it, inserted] = last_seen_.try_emplace({src, dst}, seq);
  if (inserted) return false;
  const bool ooo = seq < it->second;
  if (ooo)
    ++out_of_order_;
  else
    it->second = seq;
  return ooo;
}

}  // namespace osmosis::sim
