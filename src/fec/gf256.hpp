#pragma once
// GF(2^8) arithmetic over the paper's field polynomial
//   p(x) = x^8 + x^4 + x^3 + x^2 + 1   (0x11D)
// (§IV.C). 0x11D is primitive, so α = x = 0x02 generates the
// multiplicative group; we build log/antilog tables once and use them for
// O(1) multiply/divide/inverse. A bitwise reference multiply is exposed
// for property tests.

#include <array>
#include <cstdint>

namespace osmosis::fec {

/// The paper's generator (field) polynomial, including the x^8 term.
inline constexpr unsigned kFieldPoly = 0x11D;

/// GF(2^8) element operations. All static; the tables are process-wide.
class Gf256 {
 public:
  using Elem = std::uint8_t;

  /// Addition and subtraction coincide: carry-less XOR.
  static Elem add(Elem a, Elem b) { return a ^ b; }

  /// Table-based multiply.
  static Elem mul(Elem a, Elem b);

  /// Division a/b; b must be nonzero.
  static Elem div(Elem a, Elem b);

  /// Multiplicative inverse; a must be nonzero.
  static Elem inv(Elem a);

  /// a^n with a != 0 or n > 0 (0^0 is defined as 1 here).
  static Elem pow(Elem a, unsigned n);

  /// α^n for the primitive element α = 0x02.
  static Elem alpha_pow(unsigned n);

  /// Discrete log base α of a nonzero element, in [0, 254].
  static unsigned log(Elem a);

  /// Reference multiply: shift-and-reduce mod p(x); used to validate the
  /// tables in property tests.
  static Elem mul_reference(Elem a, Elem b);

 private:
  struct Tables {
    std::array<Elem, 256> exp;    // exp[i] = α^i (period 255; exp[255]=α^0)
    std::array<unsigned, 256> log;  // log[α^i] = i; log[0] unused
  };
  static const Tables& tables();
};

}  // namespace osmosis::fec
