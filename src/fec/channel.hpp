#pragma once
// Error channels and coded-BER estimation for the §IV.C reliability
// chain: raw optical BER (1e-10..1e-12) -> FEC -> hop-by-hop
// retransmission.
//
// Because the interesting error rates are far below what naive Monte
// Carlo can reach, three complementary tools are provided:
//   1. Monte-Carlo channels (BSC and Gilbert-Elliott burst) for the
//      regimes where events are observable,
//   2. forced-error-weight injection, which measures the decoder's
//      conditional behaviour (corrected / detected / miscorrected) given
//      exactly w bit errors, and
//   3. analytic binomial estimates that combine (2) with the error-weight
//      distribution to produce the paper's 1e-17 / 1e-21 style numbers.

#include <cstdint>

#include "src/fec/hamming272.hpp"
#include "src/sim/rng.hpp"

namespace osmosis::fec {

/// Memoryless binary symmetric channel acting on codewords.
class BinarySymmetricChannel {
 public:
  BinarySymmetricChannel(double ber, sim::Rng rng);

  /// Flips each of the 272 bits independently with probability `ber`.
  /// Returns the number of bits flipped. Uses geometric skipping so the
  /// cost is proportional to the number of errors, not the block size.
  int transmit(Hamming272::CodeBlock& cw);

  double ber() const { return ber_; }

 private:
  double ber_;
  sim::Rng rng_;
};

/// Two-state Gilbert-Elliott burst channel: a good state with low BER
/// and a bad state with high BER, with geometric sojourn times. Models
/// the bursty impairments (e.g. XGM hits) that motivate detecting
/// "most multi-bit errors" rather than correcting them.
class GilbertElliottChannel {
 public:
  struct Params {
    double good_ber = 1e-10;
    double bad_ber = 1e-3;
    double mean_good_blocks = 1e6;  // mean sojourn in good state (blocks)
    double mean_bad_blocks = 2.0;   // mean sojourn in bad state (blocks)
  };

  GilbertElliottChannel(Params p, sim::Rng rng);

  /// Transmits one block through the current state, then evolves the
  /// state. Returns bits flipped.
  int transmit(Hamming272::CodeBlock& cw);

  bool in_bad_state() const { return bad_; }

 private:
  Params p_;
  bool bad_ = false;
  sim::Rng rng_;
};

/// Outcome histogram of decoding blocks carrying exactly `weight` random
/// bit errors.
struct ErrorWeightOutcome {
  int weight = 0;
  std::uint64_t trials = 0;
  std::uint64_t corrected_ok = 0;   // decoder repaired the data exactly
  std::uint64_t detected = 0;       // decoder flagged uncorrectable
  std::uint64_t miscorrected = 0;   // decoder claimed success, data wrong

  double detected_fraction() const {
    return trials ? static_cast<double>(detected) / static_cast<double>(trials)
                  : 0.0;
  }
  double miscorrected_fraction() const {
    return trials ? static_cast<double>(miscorrected) /
                        static_cast<double>(trials)
                  : 0.0;
  }
};

/// Decodes `trials` random data blocks, each hit by exactly `weight`
/// distinct random bit flips, and classifies the outcomes.
ErrorWeightOutcome inject_bit_errors(int weight, std::uint64_t trials,
                                     sim::Rng& rng);

/// Full Monte-Carlo run over a BSC at `ber` (only useful for ber where
/// errors are actually observable, say >= 1e-6).
CodecStats run_bsc(double ber, std::uint64_t blocks, sim::Rng& rng);

// ---- analytic estimates ----------------------------------------------------

/// P(a symbol is corrupted) for bit error rate p: 1 - (1-p)^8.
double symbol_error_prob(double bit_ber);

/// P(>= 2 of the 34 codeword symbols are corrupted) — the probability
/// the single-error decoder cannot repair a block. Computed term-by-term
/// to stay accurate at 1e-19-scale values.
double frame_multi_error_prob(double bit_ber);

/// Post-FEC user BER (standard RS-style approximation): expected fraction
/// of corrupted symbols among blocks the decoder cannot repair, scaled to
/// bits. This is the paper's "better than 1e-17" tier for raw 1e-10.
double post_fec_ber(double bit_ber);

/// Residual undetected-error BER once detected blocks are repaired by
/// hop-by-hop retransmission: only miscorrections survive.
/// `miscorrect_given_multi` is the conditional miscorrection probability
/// measured by inject_bit_errors (weight >= 2). This is the paper's
/// "better than 1e-21" tier.
double post_arq_ber(double bit_ber, double miscorrect_given_multi);

}  // namespace osmosis::fec
