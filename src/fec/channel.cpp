#include "src/fec/channel.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/util/log.hpp"

namespace osmosis::fec {

// ---- BinarySymmetricChannel ------------------------------------------------

BinarySymmetricChannel::BinarySymmetricChannel(double ber, sim::Rng rng)
    : ber_(ber), rng_(rng) {
  OSMOSIS_REQUIRE(ber_ >= 0.0 && ber_ <= 1.0, "BER out of [0,1]: " << ber_);
}

int BinarySymmetricChannel::transmit(Hamming272::CodeBlock& cw) {
  if (ber_ <= 0.0) return 0;
  int flips = 0;
  // Geometric skipping: the index of the next flipped bit advances by
  // 1 + Geom(p) each time.
  std::uint64_t bit = rng_.geometric(ber_);
  while (bit < static_cast<std::uint64_t>(Hamming272::kCodeBits)) {
    Hamming272::flip_bit(cw, static_cast<int>(bit));
    ++flips;
    bit += 1 + rng_.geometric(ber_);
  }
  return flips;
}

// ---- GilbertElliottChannel ---------------------------------------------------

GilbertElliottChannel::GilbertElliottChannel(Params p, sim::Rng rng)
    : p_(p), rng_(rng) {
  OSMOSIS_REQUIRE(p_.mean_good_blocks >= 1.0 && p_.mean_bad_blocks >= 1.0,
                  "mean sojourn times must be >= 1 block");
}

int GilbertElliottChannel::transmit(Hamming272::CodeBlock& cw) {
  BinarySymmetricChannel bsc(bad_ ? p_.bad_ber : p_.good_ber, rng_.split());
  const int flips = bsc.transmit(cw);
  const double leave_prob = 1.0 / (bad_ ? p_.mean_bad_blocks : p_.mean_good_blocks);
  if (rng_.bernoulli(leave_prob)) bad_ = !bad_;
  return flips;
}

// ---- forced-weight injection -------------------------------------------------

ErrorWeightOutcome inject_bit_errors(int weight, std::uint64_t trials,
                                     sim::Rng& rng) {
  OSMOSIS_REQUIRE(weight >= 0 && weight <= Hamming272::kCodeBits,
                  "error weight out of range");
  ErrorWeightOutcome out;
  out.weight = weight;
  out.trials = trials;
  for (std::uint64_t t = 0; t < trials; ++t) {
    Hamming272::DataBlock data{};
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    const Hamming272::CodeBlock clean = Hamming272::encode(data);
    Hamming272::CodeBlock noisy = clean;

    // Choose `weight` distinct bit positions.
    int placed = 0;
    std::array<int, Hamming272::kCodeBits> hit{};  // 0/1 per bit
    while (placed < weight) {
      const int bit = static_cast<int>(
          rng.uniform_int(static_cast<std::uint64_t>(Hamming272::kCodeBits)));
      if (hit[static_cast<std::size_t>(bit)]) continue;
      hit[static_cast<std::size_t>(bit)] = 1;
      Hamming272::flip_bit(noisy, bit);
      ++placed;
    }

    const auto result = Hamming272::decode(noisy);
    if (result.status == Hamming272::DecodeStatus::kDetected) {
      ++out.detected;
    } else if (noisy == clean) {
      ++out.corrected_ok;
    } else {
      ++out.miscorrected;
    }
  }
  return out;
}

CodecStats run_bsc(double ber, std::uint64_t blocks, sim::Rng& rng) {
  CodecStats stats;
  BinarySymmetricChannel channel(ber, rng.split());
  for (std::uint64_t t = 0; t < blocks; ++t) {
    Hamming272::DataBlock data{};
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    const Hamming272::CodeBlock clean = Hamming272::encode(data);
    Hamming272::CodeBlock noisy = clean;
    channel.transmit(noisy);
    const auto result = Hamming272::decode(noisy);
    ++stats.blocks;
    switch (result.status) {
      case Hamming272::DecodeStatus::kClean:
        if (noisy == clean)
          ++stats.clean;
        else
          ++stats.miscorrected;  // errored block aliased to a codeword
        break;
      case Hamming272::DecodeStatus::kCorrected:
        if (noisy == clean)
          ++stats.corrected;
        else
          ++stats.miscorrected;
        break;
      case Hamming272::DecodeStatus::kDetected:
        ++stats.detected;
        break;
    }
  }
  return stats;
}

// ---- analytic estimates ------------------------------------------------------

double symbol_error_prob(double bit_ber) {
  OSMOSIS_REQUIRE(bit_ber >= 0.0 && bit_ber <= 1.0, "BER out of [0,1]");
  return -std::expm1(8.0 * std::log1p(-bit_ber));
}

namespace {

/// Binomial pmf C(n,j) p^j (1-p)^(n-j) computed term-wise in doubles —
/// no cancellation, accurate down to ~1e-300.
double binom_pmf(int n, int j, double p) {
  if (p == 0.0) return j == 0 ? 1.0 : 0.0;
  double c = 1.0;
  for (int i = 0; i < j; ++i)
    c *= static_cast<double>(n - i) / static_cast<double>(j - i);
  return c * std::pow(p, j) * std::pow(1.0 - p, n - j);
}

}  // namespace

double frame_multi_error_prob(double bit_ber) {
  const double ps = symbol_error_prob(bit_ber);
  const int n = Hamming272::kCodeSymbols;
  double sum = 0.0;
  for (int j = 2; j <= n; ++j) {
    const double term = binom_pmf(n, j, ps);
    sum += term;
    if (term < sum * 1e-18) break;  // series has converged
  }
  return sum;
}

double post_fec_ber(double bit_ber) {
  const double ps = symbol_error_prob(bit_ber);
  const int n = Hamming272::kCodeSymbols;
  // Expected corrupted-symbol fraction over unrecoverable blocks; the
  // failed decoder may add one more corrupted symbol (miscorrection),
  // hence the (j + 1) numerator — the standard conservative RS bound.
  double sym_out = 0.0;
  for (int j = 2; j <= n; ++j) {
    const double term =
        binom_pmf(n, j, ps) * static_cast<double>(j + 1) / n;
    sym_out += term;
    if (term < sym_out * 1e-18) break;
  }
  // Symbol errors -> bit errors: on average half the 8 bits of a wrong
  // symbol differ (2^(m-1)/(2^m - 1) factor).
  return sym_out * (128.0 / 255.0);
}

double post_arq_ber(double bit_ber, double miscorrect_given_multi) {
  OSMOSIS_REQUIRE(miscorrect_given_multi >= 0.0 && miscorrect_given_multi <= 1.0,
                  "conditional miscorrection out of [0,1]");
  // With hop-by-hop retransmission every *detected* block is repaired;
  // only miscorrected blocks leak errors to the user.
  return post_fec_ber(bit_ber) * miscorrect_given_multi;
}

}  // namespace osmosis::fec
