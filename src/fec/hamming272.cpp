#include "src/fec/hamming272.hpp"

#include "src/fec/gf256.hpp"
#include "src/util/log.hpp"

namespace osmosis::fec {
namespace {

// g(x) = (x - α)(x - α^2) = x^2 + (α + α^2) x + α^3 over GF(2^8).
constexpr std::uint8_t kG1 = 0x02 ^ 0x04;  // α + α^2 = 6
const std::uint8_t kG0 = Gf256::alpha_pow(3);  // α^3 = 8

}  // namespace

Hamming272::CodeBlock Hamming272::encode(const DataBlock& data) {
  // Systematic encoding: remainder of d(x)·x^2 divided by g(x), computed
  // with the standard two-register LFSR, processing the highest
  // polynomial coefficient (data[31] at position 33) first.
  std::uint8_t b1 = 0, b0 = 0;
  for (int j = kDataSymbols - 1; j >= 0; --j) {
    const std::uint8_t f = data[static_cast<std::size_t>(j)] ^ b1;
    b1 = b0 ^ Gf256::mul(f, kG1);
    b0 = Gf256::mul(f, kG0);
  }
  CodeBlock cw{};
  cw[0] = b0;
  cw[1] = b1;
  for (int j = 0; j < kDataSymbols; ++j)
    cw[static_cast<std::size_t>(j + kParitySymbols)] =
        data[static_cast<std::size_t>(j)];
  return cw;
}

std::uint8_t Hamming272::eval_at_alpha(const CodeBlock& cw, unsigned k) {
  const std::uint8_t point = Gf256::alpha_pow(k);
  std::uint8_t acc = 0;
  for (int i = kCodeSymbols - 1; i >= 0; --i)
    acc = Gf256::mul(acc, point) ^ cw[static_cast<std::size_t>(i)];
  return acc;
}

bool Hamming272::is_codeword(const CodeBlock& cw) {
  return eval_at_alpha(cw, 1) == 0 && eval_at_alpha(cw, 2) == 0;
}

Hamming272::DecodeResult Hamming272::decode(CodeBlock& cw) {
  const std::uint8_t s1 = eval_at_alpha(cw, 1);
  const std::uint8_t s2 = eval_at_alpha(cw, 2);
  DecodeResult r;
  if (s1 == 0 && s2 == 0) {
    r.status = DecodeStatus::kClean;
    return r;
  }
  if (s1 == 0 || s2 == 0) {
    // A single error e at position i gives S1 = e·α^i, S2 = e·α^{2i},
    // both nonzero; one vanishing syndrome means >= 2 errors.
    r.status = DecodeStatus::kDetected;
    return r;
  }
  // Candidate single error: α^i = S2/S1.
  const unsigned pos =
      (Gf256::log(s2) + 255u - Gf256::log(s1)) % 255u;
  if (pos >= static_cast<unsigned>(kCodeSymbols)) {
    // The code is shortened from length 255 to 34; a locator pointing at
    // a virtual (always-zero) position proves the pattern uncorrectable.
    r.status = DecodeStatus::kDetected;
    return r;
  }
  const std::uint8_t magnitude = Gf256::div(s1, Gf256::alpha_pow(pos));
  cw[pos] ^= magnitude;
  r.status = DecodeStatus::kCorrected;
  r.error_symbol = static_cast<int>(pos);
  r.error_magnitude = magnitude;
  return r;
}

Hamming272::DecodeResult Hamming272::detect_only(const CodeBlock& cw) {
  DecodeResult r;
  r.status = is_codeword(cw) ? DecodeStatus::kClean : DecodeStatus::kDetected;
  return r;
}

Hamming272::DataBlock Hamming272::extract(const CodeBlock& cw) {
  DataBlock d{};
  for (int j = 0; j < kDataSymbols; ++j)
    d[static_cast<std::size_t>(j)] =
        cw[static_cast<std::size_t>(j + kParitySymbols)];
  return d;
}

void Hamming272::flip_bit(CodeBlock& cw, int bit) {
  OSMOSIS_REQUIRE(bit >= 0 && bit < kCodeBits, "bit index out of range");
  cw[static_cast<std::size_t>(bit / 8)] ^=
      static_cast<std::uint8_t>(1u << (bit % 8));
}

}  // namespace osmosis::fec
