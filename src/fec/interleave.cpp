#include "src/fec/interleave.hpp"

#include "src/util/log.hpp"

namespace osmosis::fec {

Interleaver::Interleaver(int depth) : depth_(depth) {
  OSMOSIS_REQUIRE(depth_ >= 1, "interleaver depth must be >= 1");
}

std::vector<std::uint8_t> Interleaver::interleave(
    const std::vector<Hamming272::CodeBlock>& blocks) const {
  OSMOSIS_REQUIRE(static_cast<int>(blocks.size()) == depth_,
                  "need exactly " << depth_ << " blocks, got "
                                  << blocks.size());
  std::vector<std::uint8_t> wire(
      static_cast<std::size_t>(wire_symbols()));
  for (int i = 0; i < Hamming272::kCodeSymbols; ++i)
    for (int d = 0; d < depth_; ++d)
      wire[static_cast<std::size_t>(i * depth_ + d)] =
          blocks[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
  return wire;
}

std::vector<Hamming272::CodeBlock> Interleaver::deinterleave(
    const std::vector<std::uint8_t>& wire) const {
  OSMOSIS_REQUIRE(static_cast<int>(wire.size()) == wire_symbols(),
                  "wire stream size mismatch");
  std::vector<Hamming272::CodeBlock> blocks(
      static_cast<std::size_t>(depth_));
  for (int i = 0; i < Hamming272::kCodeSymbols; ++i)
    for (int d = 0; d < depth_; ++d)
      blocks[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)] =
          wire[static_cast<std::size_t>(i * depth_ + d)];
  return blocks;
}

void corrupt_burst(std::vector<std::uint8_t>& wire, int start, int symbols) {
  OSMOSIS_REQUIRE(start >= 0 && symbols >= 0 &&
                      start + symbols <= static_cast<int>(wire.size()),
                  "burst out of range");
  for (int k = 0; k < symbols; ++k) {
    // Nonzero, position-dependent corruption: every hit symbol changes.
    wire[static_cast<std::size_t>(start + k)] ^=
        static_cast<std::uint8_t>(0x5A + k * 7 + 1);
  }
}

bool burst_survives(int depth, int burst_symbols, sim::Rng& rng) {
  Interleaver il(depth);
  std::vector<Hamming272::DataBlock> data(static_cast<std::size_t>(depth));
  std::vector<Hamming272::CodeBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(depth));
  for (auto& d : data) {
    for (auto& b : d) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    blocks.push_back(Hamming272::encode(d));
  }
  auto wire = il.interleave(blocks);
  const int max_start = il.wire_symbols() - burst_symbols;
  const int start = max_start > 0
                        ? static_cast<int>(rng.uniform_int(
                              static_cast<std::uint64_t>(max_start + 1)))
                        : 0;
  corrupt_burst(wire, start, burst_symbols);
  auto received = il.deinterleave(wire);
  for (int d = 0; d < depth; ++d) {
    auto& cw = received[static_cast<std::size_t>(d)];
    Hamming272::decode(cw);
    if (Hamming272::extract(cw) != data[static_cast<std::size_t>(d)])
      return false;
  }
  return true;
}

}  // namespace osmosis::fec
