#pragma once
// Block symbol interleaver for the (272,256) FEC. A 256 B cell carries
// several FEC blocks; transmitting D codewords column-interleaved means
// a burst of up to D consecutive corrupted symbols on the wire (an XGM
// hit, an SOA transient, a burst-mode lock slip) lands at most ONE
// symbol in each codeword — turning bursts the distance-3 code cannot
// handle into the single-symbol errors it always corrects. This is the
// standard companion to short-block FECs on optical links and the
// concrete mechanism behind surviving the bursty impairments §IV.C's
// two-tier scheme anticipates.

#include <cstdint>
#include <vector>

#include "src/fec/hamming272.hpp"
#include "src/sim/rng.hpp"

namespace osmosis::fec {

class Interleaver {
 public:
  /// `depth`: number of codewords interleaved together (D >= 1).
  explicit Interleaver(int depth);

  int depth() const { return depth_; }

  /// Wire-stream length for one interleaving group.
  int wire_symbols() const { return depth_ * Hamming272::kCodeSymbols; }

  /// Column-wise interleave: wire[i*D + d] = block d, symbol i.
  std::vector<std::uint8_t> interleave(
      const std::vector<Hamming272::CodeBlock>& blocks) const;

  /// Inverse of interleave().
  std::vector<Hamming272::CodeBlock> deinterleave(
      const std::vector<std::uint8_t>& wire) const;

 private:
  int depth_;
};

/// XORs a burst of `symbols` consecutive wire symbols starting at
/// `start` with nonzero corruption (deterministic pattern + offset so
/// every corrupted symbol actually changes).
void corrupt_burst(std::vector<std::uint8_t>& wire, int start, int symbols);

/// End-to-end helper: encodes `depth` random data blocks, interleaves,
/// corrupts a `burst_symbols`-long wire burst, deinterleaves and
/// decodes. Returns true when every block decoded to its original data
/// (guaranteed for burst_symbols <= depth).
bool burst_survives(int depth, int burst_symbols, sim::Rng& rng);

}  // namespace osmosis::fec
