#include "src/fec/gf256.hpp"

#include "src/util/log.hpp"

namespace osmosis::fec {

Gf256::Elem Gf256::mul_reference(Elem a, Elem b) {
  unsigned acc = 0;
  unsigned aa = a;
  for (unsigned bit = 0; bit < 8; ++bit) {
    if (b & (1u << bit)) acc ^= aa << bit;
  }
  // Reduce the 15-bit product modulo p(x).
  for (int bit = 14; bit >= 8; --bit) {
    if (acc & (1u << bit)) acc ^= kFieldPoly << (bit - 8);
  }
  return static_cast<Elem>(acc);
}

const Gf256::Tables& Gf256::tables() {
  static const Tables t = [] {
    Tables tab{};
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      tab.exp[i] = static_cast<Elem>(x);
      tab.log[x] = i;
      x <<= 1;
      if (x & 0x100) x ^= kFieldPoly;
    }
    OSMOSIS_REQUIRE(x == 1, "0x11D is not primitive?!");  // α^255 == 1
    tab.exp[255] = 1;  // convenience wraparound
    tab.log[0] = 0;    // never read; keeps the array fully initialized
    return tab;
  }();
  return t;
}

Gf256::Elem Gf256::mul(Elem a, Elem b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  const unsigned s = t.log[a] + t.log[b];
  return t.exp[s % 255];
}

Gf256::Elem Gf256::div(Elem a, Elem b) {
  OSMOSIS_REQUIRE(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  const Tables& t = tables();
  const unsigned s = t.log[a] + 255 - t.log[b];
  return t.exp[s % 255];
}

Gf256::Elem Gf256::inv(Elem a) {
  OSMOSIS_REQUIRE(a != 0, "inverse of zero in GF(256)");
  const Tables& t = tables();
  return t.exp[(255 - t.log[a]) % 255];
}

Gf256::Elem Gf256::pow(Elem a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const unsigned e = (t.log[a] * static_cast<unsigned long long>(n)) % 255;
  return t.exp[e];
}

Gf256::Elem Gf256::alpha_pow(unsigned n) { return tables().exp[n % 255]; }

unsigned Gf256::log(Elem a) {
  OSMOSIS_REQUIRE(a != 0, "log of zero in GF(256)");
  return tables().log[a];
}

}  // namespace osmosis::fec
