#pragma once
// The paper's FEC (§IV.C): a (272, 256, 3) generalized non-binary cyclic
// Hamming code over GF(2^8) with field polynomial x^8+x^4+x^3+x^2+1.
//
// At symbol level this is a (34, 32) distance-3 cyclic code with
// generator g(x) = (x - α)(x - α^2) — two parity symbols, single-symbol
// error correction (hence correction of ALL single-bit errors, and of
// any error burst confined to one byte), detection of errors whose
// syndrome does not match a valid single-symbol pattern. Block length
// 272 bits, overhead 16/256 = 6.25 %, exactly as the paper specifies.
// The short block keeps coding latency low (one cell carries multiple
// blocks), the trade the paper calls out explicitly.

#include <array>
#include <cstdint>

namespace osmosis::fec {

class Hamming272 {
 public:
  static constexpr int kDataSymbols = 32;    // 256 data bits
  static constexpr int kParitySymbols = 2;   // 16 parity bits
  static constexpr int kCodeSymbols = 34;    // 272 coded bits
  static constexpr int kCodeBits = kCodeSymbols * 8;
  static constexpr double kOverhead =
      static_cast<double>(kParitySymbols) / kDataSymbols;  // 6.25 %

  /// 32 data bytes in / 34 coded bytes out. Index i of the codeword is
  /// the coefficient of x^i: parity at positions 0..1, data at 2..33
  /// (data[j] = coefficient j+2). Systematic.
  using DataBlock = std::array<std::uint8_t, kDataSymbols>;
  using CodeBlock = std::array<std::uint8_t, kCodeSymbols>;

  static CodeBlock encode(const DataBlock& data);

  enum class DecodeStatus : std::uint8_t {
    kClean,      // syndromes zero, nothing to do
    kCorrected,  // single-symbol error located and repaired
    kDetected,   // uncorrectable pattern flagged (triggers retransmission)
  };

  struct DecodeResult {
    DecodeStatus status = DecodeStatus::kClean;
    int error_symbol = -1;           // corrected position, if any
    std::uint8_t error_magnitude = 0;
  };

  /// Syndrome decode; corrects `cw` in place when possible.
  ///
  /// Distance-3 caveat (inherent to the (34,32,3) parameters the paper
  /// specifies): while every single-SYMBOL error — hence every
  /// single-bit error — is corrected, a two-symbol error pattern can
  /// alias to a valid single-symbol correction (~n/q ≈ 13 % of random
  /// patterns). Use detect_only() when the link layer prefers the
  /// guaranteed detect-up-to-two-symbol-errors mode, e.g. under burst
  /// impairments; hop-by-hop retransmission then repairs the block.
  static DecodeResult decode(CodeBlock& cw);

  /// Pure error-detection mode: never modifies the block; flags ANY
  /// pattern of up to two corrupted symbols (guaranteed by d = 3) and
  /// most heavier patterns.
  static DecodeResult detect_only(const CodeBlock& cw);

  /// Pulls the systematic data bytes back out of a (corrected) codeword.
  static DataBlock extract(const CodeBlock& cw);

  /// True when both syndromes vanish.
  static bool is_codeword(const CodeBlock& cw);

  /// XOR-flips bit `bit` (0..271) of the codeword; bit b lives in
  /// symbol b/8, bit position b%8. Test/benchmark helper modelling a
  /// transmission bit error.
  static void flip_bit(CodeBlock& cw, int bit);

 private:
  /// Evaluates the codeword polynomial at α^k (Horner).
  static std::uint8_t eval_at_alpha(const CodeBlock& cw, unsigned k);
};

/// Tally of decoder outcomes across a run, including ground-truth-aware
/// miscorrection accounting (the decoder "fixed" the wrong thing).
struct CodecStats {
  std::uint64_t blocks = 0;
  std::uint64_t clean = 0;
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;
  std::uint64_t miscorrected = 0;  // decoder said corrected/clean but data wrong

  double detected_rate() const {
    return blocks ? static_cast<double>(detected) / static_cast<double>(blocks)
                  : 0.0;
  }
  double miscorrection_rate() const {
    return blocks ? static_cast<double>(miscorrected) /
                        static_cast<double>(blocks)
                  : 0.0;
  }
};

}  // namespace osmosis::fec
