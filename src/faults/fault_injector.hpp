#pragma once
// Expands a FaultPlan into a slot-ordered timeline of begin/repair
// transitions and answers the simulators' per-cell error-roll queries.
//
// Determinism contract: the injector owns a private xoshiro stream
// seeded from the plan, and consumes it ONLY while a rate-based window
// (burst errors, grant corruption) is active. A simulator that calls
// tick() once per slot and makes its roll queries in its deterministic
// grant order therefore replays the exact same degraded run for the
// same plan — the property the fault-plan determinism test pins down.

#include <cstdint>
#include <string>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/faults/fault_plan.hpp"
#include "src/sim/rng.hpp"

namespace osmosis::faults {

/// One structural change the simulator must apply: a fault beginning
/// (`begin` true) or being repaired (`begin` false).
struct FaultTransition {
  std::uint64_t slot = 0;
  bool begin = true;
  FaultEvent event;
};

/// One line per applied transition, e.g.
/// "t=1200 begin module-death a=3 b=1" — the determinism audit trail.
std::string describe(const FaultTransition& t);

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// All transitions due at slot `t` (in timeline order). Call exactly
  /// once per simulated slot with non-decreasing `t`. Rate-window
  /// begins/ends also update the injector's internal roll state.
  std::vector<FaultTransition> tick(std::uint64_t t);

  /// True when the grant now being delivered is corrupted (rolls the
  /// seeded stream only while a grant-corruption window is open).
  bool corrupt_grant();

  /// True when a crossbar transfer from `ingress` arrives
  /// FEC-uncorrectable (rolls only while a burst window covers it).
  bool corrupt_transfer(int ingress);

  /// Transitions not yet fired (a drain loop keeps stepping while this
  /// is non-zero so late repairs still land and get logged).
  std::size_t pending() const { return timeline_.size() - next_; }

  /// Windows currently open (any kind).
  int active_faults() const { return active_; }

  /// Applied-transition audit log.
  const std::vector<std::string>& log() const { return log_; }

  /// Checkpoint serialization. The timeline is a pure function of the
  /// plan (the ctor rebuilds it), so only the cursor, the roll stream,
  /// the open windows and the audit log are persisted; the cursor is
  /// range-checked against the rebuilt timeline on load.
  template <class Ar>
  void io_state(Ar& a) {
    std::uint64_t next = next_;
    ckpt::field(a, next);
    if constexpr (Ar::kLoading) {
      if (next > timeline_.size())
        throw ckpt::Error("fault timeline cursor out of range in checkpoint");
      next_ = static_cast<std::size_t>(next);
    }
    ckpt::field(a, rng_);
    ckpt::field(a, windows_);
    ckpt::field(a, active_);
    ckpt::field(a, log_);
  }

 private:
  struct RateWindow {
    FaultKind kind;
    int port;  // -1 = all (grant corruption is always global)
    double rate;

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, kind);
      ckpt::field(a, port);
      ckpt::field(a, rate);
    }
  };

  std::vector<FaultTransition> timeline_;  // sorted by slot, stable
  std::size_t next_ = 0;
  sim::Rng rng_;
  std::vector<RateWindow> windows_;
  int active_ = 0;
  std::vector<std::string> log_;
};

}  // namespace osmosis::faults
