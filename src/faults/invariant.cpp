#include "src/faults/invariant.hpp"

#include <algorithm>

namespace osmosis::faults {

void ExactlyOnceChecker::delivered(std::uint64_t flow, std::uint64_t seq) {
  FlowState& f = flows_[flow];
  ++f.delivered;
  if (seq == f.next_expected) {
    ++f.next_expected;
  } else if (seq < f.next_expected) {
    ++f.duplicates;
  } else {
    // A gap: cells next_expected..seq-1 were skipped over. They may
    // still arrive (counting then as duplicates-of-position is wrong,
    // so gaps are charged as reorderings here and the gap cells as
    // missing only if they never show up — report() reconciles totals).
    ++f.reordered;
    f.next_expected = seq + 1;
  }
}

ExactlyOnceChecker::Report ExactlyOnceChecker::report() const {
  Report r;
  for (const auto& [flow, f] : flows_) {
    r.offered += f.offered;
    r.delivered += f.delivered;
    r.duplicates += f.duplicates;
    r.reordered += f.reordered;
    // Per flow, every offered cell not accounted for by a delivery is
    // missing. Duplicates over-count deliveries, so net them out.
    const std::uint64_t unique =
        f.delivered >= f.duplicates ? f.delivered - f.duplicates : 0;
    if (f.offered > unique) r.missing += f.offered - unique;
  }
  return r;
}

void RecoveryTracker::on_fault(std::uint64_t t, const std::string& key,
                               std::uint64_t baseline_backlog) {
  (void)t;
  ++faults_;
  open_[key] = Open{baseline_backlog, 0, false};
}

void RecoveryTracker::on_repair(std::uint64_t t, const std::string& key) {
  auto it = open_.find(key);
  if (it == open_.end()) return;
  it->second.repaired = true;
  it->second.repaired_at = t;
  ++repaired_;
}

void RecoveryTracker::observe(std::uint64_t t, std::uint64_t backlog) {
  for (auto it = open_.begin(); it != open_.end();) {
    const Open& o = it->second;
    if (o.repaired && backlog <= o.baseline) {
      const double dt = static_cast<double>(t - o.repaired_at);
      ++recovered_;
      sum_recovery_ += dt;
      max_recovery_ = std::max(max_recovery_, dt);
      recovery_hist_.add(dt);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace osmosis::faults
