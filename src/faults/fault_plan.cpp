#include "src/faults/fault_plan.hpp"

#include "src/util/log.hpp"

namespace osmosis::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kModuleDeath:
      return "module-death";
    case FaultKind::kFiberCut:
      return "fiber-cut";
    case FaultKind::kBurstErrors:
      return "burst-errors";
    case FaultKind::kGrantCorruption:
      return "grant-corruption";
    case FaultKind::kAdapterStall:
      return "adapter-stall";
    case FaultKind::kPlaneFailure:
      return "plane-failure";
  }
  return "unknown";
}

FaultKind fault_kind_from_string(const std::string& name) {
  for (FaultKind k :
       {FaultKind::kModuleDeath, FaultKind::kFiberCut, FaultKind::kBurstErrors,
        FaultKind::kGrantCorruption, FaultKind::kAdapterStall,
        FaultKind::kPlaneFailure}) {
    if (name == to_string(k)) return k;
  }
  OSMOSIS_REQUIRE(false, "unknown fault kind name: " << name);
  return FaultKind::kModuleDeath;
}

FaultPlan& FaultPlan::kill_module(std::uint64_t at_slot, int egress,
                                  int receiver,
                                  std::uint64_t duration_slots) {
  return add(FaultEvent{at_slot, FaultKind::kModuleDeath, egress, receiver,
                        duration_slots, 0.0});
}

FaultPlan& FaultPlan::cut_fiber(std::uint64_t at_slot, int fiber,
                                std::uint64_t duration_slots) {
  return add(FaultEvent{at_slot, FaultKind::kFiberCut, fiber, -1,
                        duration_slots, 0.0});
}

FaultPlan& FaultPlan::burst_errors(std::uint64_t at_slot, int ingress,
                                   std::uint64_t duration_slots,
                                   double rate) {
  OSMOSIS_REQUIRE(duration_slots > 0, "burst-error windows must be transient");
  return add(FaultEvent{at_slot, FaultKind::kBurstErrors, ingress, -1,
                        duration_slots, rate});
}

FaultPlan& FaultPlan::corrupt_grants(std::uint64_t at_slot,
                                     std::uint64_t duration_slots,
                                     double rate) {
  OSMOSIS_REQUIRE(duration_slots > 0,
                  "grant-corruption windows must be transient");
  return add(FaultEvent{at_slot, FaultKind::kGrantCorruption, -1, -1,
                        duration_slots, rate});
}

FaultPlan& FaultPlan::stall_adapter(std::uint64_t at_slot, int ingress,
                                    std::uint64_t duration_slots) {
  OSMOSIS_REQUIRE(duration_slots > 0, "adapter stalls must be transient");
  return add(FaultEvent{at_slot, FaultKind::kAdapterStall, ingress, -1,
                        duration_slots, 0.0});
}

FaultPlan& FaultPlan::fail_plane(std::uint64_t at_slot, int plane,
                                 std::uint64_t duration_slots) {
  return add(FaultEvent{at_slot, FaultKind::kPlaneFailure, plane, -1,
                        duration_slots, 0.0});
}

FaultPlan& FaultPlan::add(const FaultEvent& e) {
  OSMOSIS_REQUIRE(e.rate >= 0.0 && e.rate <= 1.0,
                  "fault rate must be a probability, got " << e.rate);
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::seeded(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

bool FaultPlan::has_permanent_fault() const {
  for (const auto& e : events_)
    if (!e.transient()) return true;
  return false;
}

}  // namespace osmosis::faults
