#pragma once
// Deterministic, seeded fault scheduling for the simulators (§VI.A
// "monitoring demonstrator operation" turned into a live story): a
// FaultPlan is a declarative list of transient or permanent faults to
// inject DURING a run — SOA switching-module death and revival,
// broadcast-fiber cuts, per-link burst bit errors feeding the FEC/ARQ
// path, corrupted (dropped) grants on the control path, ingress-adapter
// stalls, and whole-plane failures of a striped multi-plane fabric.
//
// The plan is pure data: the simulators hand it to a FaultInjector
// (fault_injector.hpp) which expands it into a slot-ordered timeline of
// begin/repair transitions plus seeded per-cell error rolls, so the
// same plan + seed always reproduces the same degraded run.

#include <cstdint>
#include <string>
#include <vector>

namespace osmosis::faults {

enum class FaultKind : std::uint8_t {
  // An optical switching module (egress `a`, receiver `b`) goes dark;
  // the dual-receiver architecture keeps the egress reachable through
  // the survivor and the scheduler masks the lost capacity.
  kModuleDeath,
  // Broadcast fiber `a` is cut: its whole WDM ingress group loses its
  // light path. Unlike a pre-run `failed_fibers` entry (host offline),
  // a mid-run cut leaves the hosts up — cells keep arriving and park in
  // the VOQs until the repair.
  kFiberCut,
  // Burst bit errors on ingress link `a` (-1 = every link): each
  // crossbar transfer from that ingress arrives FEC-uncorrectable with
  // probability `rate` while the window is open, and the go-back-N path
  // retransmits it.
  kBurstErrors,
  // Control-path corruption: each grant is dropped on its way to the
  // ingress adapter with probability `rate`; the adapter's missed-grant
  // timeout re-files the request.
  kGrantCorruption,
  // Ingress adapter `a` stalls (firmware hiccup): it keeps buffering
  // arrivals but neither transmits nor accepts grants.
  kAdapterStall,
  // Parallel-path element `a` dies: a whole switch plane in the
  // multi-plane striped fabric, or spine switch `a` in the two-stage
  // fabric. Traffic is re-steered (multi-plane) or back-pressured
  // losslessly (fabric) until revival.
  kPlaneFailure,
};

const char* to_string(FaultKind kind);
/// Inverse of to_string (used by the osmosis.repro.v1 (de)serializer);
/// aborts (OSMOSIS_REQUIRE) on an unknown name.
FaultKind fault_kind_from_string(const std::string& name);

struct FaultEvent {
  std::uint64_t at_slot = 0;
  FaultKind kind = FaultKind::kModuleDeath;
  int a = -1;                        // kind-specific: egress/fiber/port/plane
  int b = -1;                        // kind-specific: receiver
  std::uint64_t duration_slots = 0;  // 0 = permanent (never repaired)
  double rate = 0.0;                 // per-cell probability for rate kinds

  bool transient() const { return duration_slots > 0; }
  std::uint64_t end_slot() const { return at_slot + duration_slots; }
};

/// A seeded, declarative schedule of faults. Builder methods return the
/// plan so scenarios read as one chained expression.
class FaultPlan {
 public:
  FaultPlan& kill_module(std::uint64_t at_slot, int egress, int receiver,
                         std::uint64_t duration_slots = 0);
  FaultPlan& cut_fiber(std::uint64_t at_slot, int fiber,
                       std::uint64_t duration_slots = 0);
  FaultPlan& burst_errors(std::uint64_t at_slot, int ingress,
                          std::uint64_t duration_slots, double rate);
  FaultPlan& corrupt_grants(std::uint64_t at_slot,
                            std::uint64_t duration_slots, double rate);
  FaultPlan& stall_adapter(std::uint64_t at_slot, int ingress,
                           std::uint64_t duration_slots);
  FaultPlan& fail_plane(std::uint64_t at_slot, int plane,
                        std::uint64_t duration_slots = 0);
  FaultPlan& add(const FaultEvent& e);

  /// Seed for the injector's error-roll stream (burst / grant faults).
  FaultPlan& seeded(std::uint64_t seed);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }
  std::uint64_t seed() const { return seed_; }

  /// True when any event is permanent (duration 0) — such a plan can
  /// strand cells, so a drain phase will not terminate on empty queues.
  bool has_permanent_fault() const;

 private:
  std::vector<FaultEvent> events_;
  std::uint64_t seed_ = 0x0FA7'17ULL;
};

}  // namespace osmosis::faults
