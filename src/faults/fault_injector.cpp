#include "src/faults/fault_injector.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/log.hpp"

namespace osmosis::faults {

std::string describe(const FaultTransition& t) {
  std::ostringstream oss;
  oss << "t=" << t.slot << ' ' << (t.begin ? "begin" : "repair") << ' '
      << to_string(t.event.kind);
  if (t.event.a >= 0) oss << " a=" << t.event.a;
  if (t.event.b >= 0) oss << " b=" << t.event.b;
  if (t.event.rate > 0.0) oss << " rate=" << t.event.rate;
  return oss.str();
}

FaultInjector::FaultInjector(const FaultPlan& plan) : rng_(plan.seed()) {
  timeline_.reserve(plan.size() * 2);
  for (const FaultEvent& e : plan.events()) {
    timeline_.push_back(FaultTransition{e.at_slot, true, e});
    if (e.transient())
      timeline_.push_back(FaultTransition{e.end_slot(), false, e});
  }
  std::stable_sort(timeline_.begin(), timeline_.end(),
                   [](const FaultTransition& x, const FaultTransition& y) {
                     return x.slot < y.slot;
                   });
}

std::vector<FaultTransition> FaultInjector::tick(std::uint64_t t) {
  std::vector<FaultTransition> due;
  while (next_ < timeline_.size() && timeline_[next_].slot <= t) {
    FaultTransition tr = timeline_[next_++];
    tr.slot = t;  // a late first tick applies backlogged transitions now
    const FaultEvent& e = tr.event;
    if (e.kind == FaultKind::kBurstErrors ||
        e.kind == FaultKind::kGrantCorruption) {
      if (tr.begin) {
        windows_.push_back(RateWindow{e.kind, e.a, e.rate});
      } else {
        auto it = std::find_if(windows_.begin(), windows_.end(),
                               [&](const RateWindow& w) {
                                 return w.kind == e.kind && w.port == e.a &&
                                        w.rate == e.rate;
                               });
        OSMOSIS_REQUIRE(it != windows_.end(),
                        "rate window closed without a matching open");
        windows_.erase(it);
      }
    }
    active_ += tr.begin ? 1 : -1;
    log_.push_back(describe(tr));
    due.push_back(tr);
  }
  return due;
}

bool FaultInjector::corrupt_grant() {
  for (const RateWindow& w : windows_)
    if (w.kind == FaultKind::kGrantCorruption && rng_.bernoulli(w.rate))
      return true;
  return false;
}

bool FaultInjector::corrupt_transfer(int ingress) {
  for (const RateWindow& w : windows_) {
    if (w.kind != FaultKind::kBurstErrors) continue;
    if (w.port >= 0 && w.port != ingress) continue;
    if (rng_.bernoulli(w.rate)) return true;
  }
  return false;
}

}  // namespace osmosis::faults
