#pragma once
// End-of-run correctness accounting for degraded operation. Two
// independent trackers:
//
//  * ExactlyOnceChecker — per-flow sequence audit. Every offered cell
//    must be delivered exactly once and in order (Table 1) even across
//    mid-run faults and retransmissions; anything else is quantified
//    (duplicates, reorderings, cells still missing at end of run).
//
//  * RecoveryTracker — time-to-recover measurement. A fault snapshots
//    the backlog at onset; after the repair, the system counts as
//    recovered on the first slot the backlog returns to that baseline,
//    and the elapsed repair->recovered time feeds the RunReport.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ckpt/archive.hpp"
#include "src/sim/stats.hpp"

namespace osmosis::faults {

class ExactlyOnceChecker {
 public:
  /// A cell of `flow` was offered (entered the system). Sequence
  /// numbers per flow are implicit: 0, 1, 2, ... in offer order.
  void offered(std::uint64_t flow) { ++flows_[flow].offered; }

  /// A cell of `flow` with sequence `seq` left the system.
  void delivered(std::uint64_t flow, std::uint64_t seq);

  struct Report {
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t duplicates = 0;  // seq seen again after delivery
    std::uint64_t reordered = 0;   // seq arrived ahead of an earlier gap
    std::uint64_t missing = 0;     // offered but never delivered

    /// The Table 1 verdict: every offered cell delivered exactly once,
    /// in per-flow order, none lost.
    bool exactly_once_in_order() const {
      return duplicates == 0 && reordered == 0 && missing == 0 &&
             delivered == offered;
    }
  };

  Report report() const;

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, flows_);
  }

 private:
  struct FlowState {
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t next_expected = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t reordered = 0;

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, offered);
      ckpt::field(a, delivered);
      ckpt::field(a, next_expected);
      ckpt::field(a, duplicates);
      ckpt::field(a, reordered);
    }
  };
  std::unordered_map<std::uint64_t, FlowState> flows_;
};

class RecoveryTracker {
 public:
  /// A fault keyed `key` began at `t` with the given system backlog.
  void on_fault(std::uint64_t t, const std::string& key,
                std::uint64_t baseline_backlog);

  /// The fault was repaired at `t`; recovery timing starts here.
  void on_repair(std::uint64_t t, const std::string& key);

  /// Call once per slot with the current total backlog (queued cells).
  void observe(std::uint64_t t, std::uint64_t backlog);

  std::uint64_t faults() const { return faults_; }
  std::uint64_t repaired() const { return repaired_; }
  std::uint64_t recovered() const { return recovered_; }
  double mean_recovery_slots() const {
    return recovered_ ? sum_recovery_ / static_cast<double>(recovered_) : 0.0;
  }
  double max_recovery_slots() const { return max_recovery_; }

  /// MTTR distribution: one sample per recovery (repair -> backlog back
  /// at the fault-onset baseline), in slots. Feeds the RunReport
  /// availability section's "mttr" histogram.
  const sim::Histogram& recovery_histogram() const { return recovery_hist_; }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, open_);
    ckpt::field(a, faults_);
    ckpt::field(a, repaired_);
    ckpt::field(a, recovered_);
    ckpt::field(a, sum_recovery_);
    ckpt::field(a, max_recovery_);
    ckpt::field(a, recovery_hist_);
  }

 private:
  struct Open {
    std::uint64_t baseline = 0;
    std::uint64_t repaired_at = 0;
    bool repaired = false;

    template <class Ar>
    void io_state(Ar& a) {
      ckpt::field(a, baseline);
      ckpt::field(a, repaired_at);
      ckpt::field(a, repaired);
    }
  };
  std::unordered_map<std::string, Open> open_;
  std::uint64_t faults_ = 0;
  std::uint64_t repaired_ = 0;
  std::uint64_t recovered_ = 0;
  double sum_recovery_ = 0.0;
  double max_recovery_ = 0.0;
  sim::Histogram recovery_hist_{256.0};
};

}  // namespace osmosis::faults
