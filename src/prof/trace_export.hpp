#pragma once
// Chrome trace_event export (DESIGN.md §11): renders the two clocks of
// the observability layer as files loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
//   * wall-clock mode — the Profiler's captured spans become per-thread
//     duration (B/E) tracks; a campaign run shows one Gantt row per
//     worker with each job as a named block.
//   * sim-time mode — virtual time, 1 slot = 1 µs by default. CellTrace
//     lifecycle spans become async (b/e) tracks grouped per source port,
//     fault-plan windows become an injected-faults track, and the in-run
//     time series becomes counter (C) tracks.
//
// ChromeTraceBuilder is the shared writer. It buffers events and
// serializes them sorted by timestamp (metadata first), with duration
// events generated per (pid, tid) through an explicit span stack so the
// B/E stream is always properly nested — the invariants the schema
// checker (bench/schema_check.cpp) and tests/prof_test.cpp verify.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/faults/fault_plan.hpp"
#include "src/prof/profiler.hpp"
#include "src/prof/timeseries.hpp"
#include "src/telemetry/trace.hpp"

namespace osmosis::prof {

class ChromeTraceBuilder {
 public:
  void process_name(int pid, const std::string& name);
  void thread_name(int pid, int tid, const std::string& name);

  /// A B/E duration span on a thread track. Spans on one (pid, tid) are
  /// assumed to nest (RAII scopes do by construction); a span that
  /// straddles its enclosing span's end is clamped to keep the emitted
  /// stream well formed.
  void duration(int pid, int tid, const std::string& name, double ts_us,
                double dur_us,
                const std::map<std::string, double>& args = {});

  /// An async (b/e) span: the Chrome idiom for windows that may overlap
  /// on one track — cell lifetimes sharing a source port, concurrent
  /// fault windows. Grouped by (cat, id) in the viewer.
  void async_begin(int pid, int tid, const std::string& cat,
                   std::uint64_t id, const std::string& name, double ts_us,
                   const std::map<std::string, double>& args = {});
  void async_end(int pid, int tid, const std::string& cat, std::uint64_t id,
                 double ts_us);

  /// A counter sample; each entry of `series` renders as one line in the
  /// counter track named `name`.
  void counter(int pid, int tid, const std::string& name, double ts_us,
               const std::map<std::string, double>& series);

  void instant(int pid, int tid, const std::string& name, double ts_us);

  std::size_t event_count() const;

  /// The {"traceEvents": [...]} document. Timed events are emitted in
  /// nondecreasing `ts` order.
  std::string to_json(int indent = 0) const;

 private:
  struct Event {
    char ph = 'i';  // B/E produced from spans_; others stored directly
    int pid = 0;
    int tid = 0;
    std::string name;
    std::string cat;
    std::uint64_t id = 0;
    bool has_id = false;
    double ts_us = 0.0;
    std::map<std::string, double> args;
  };
  struct Span {
    int pid = 0;
    int tid = 0;
    std::string name;
    double ts_us = 0.0;
    double dur_us = 0.0;
    std::map<std::string, double> args;
  };

  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> thread_names_;
  std::vector<Span> spans_;
  std::vector<Event> events_;
};

/// Wall-clock trace: every captured profiler span on its thread's track.
/// Requires Profiler::enable(/*capture_spans=*/true) during the run.
std::string wall_trace_json(const Profiler& profiler, int indent = 0);

/// Sim-time trace from a run's artifacts. Any input may be empty; pass
/// nullptr to skip a section. `us_per_slot` maps virtual slots onto the
/// trace's microsecond axis (default: 1 slot = 1 µs).
std::string sim_trace_json(const telemetry::CellTrace* trace,
                           const faults::FaultPlan* plan,
                           const TimeSeriesData* series,
                           double us_per_slot = 1.0, int indent = 0);

}  // namespace osmosis::prof
