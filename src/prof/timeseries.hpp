#pragma once
// Deterministic in-run time series (DESIGN.md §11). The simulators call
// `due(slot)` at each slot boundary and, when it fires, record one row
// of channel values (per-port VOQ depth, aggregate backlog, link
// utilization, credit occupancy, instantaneous throughput). Rows land in
// a fixed-capacity buffer with stride-doubling decimation: when the
// buffer fills, every other row (the odd-indexed ones) is dropped and
// the sampling stride doubles, so an arbitrarily long run keeps at most
// `max_samples` uniformly spaced rows.
//
// Determinism contract: `due()` depends only on (slot, stride), and the
// stride evolves only through record() calls — both functions of the
// simulated schedule, never of wall time or thread interleaving. The
// serialized series is therefore byte-identical at any thread count and
// across checkpoint/resume (the stride and retained rows ride along via
// io_state).

#include <cstdint>
#include <string>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::prof {

struct TimeSeriesConfig {
  bool enabled = false;
  /// Initial sampling period in slots; decimation doubles it as needed.
  std::uint64_t every_slots = 256;
  /// Retained-row bound; buffer never holds more rows than this.
  std::size_t max_samples = 512;
};

/// Immutable snapshot of a sampled series, the shape serialized into
/// RunReport ("timeseries" key): column names plus row-major values.
struct TimeSeriesData {
  std::uint64_t every_slots = 0;  // effective (post-decimation) stride
  std::vector<std::string> channels;
  std::vector<std::uint64_t> slots;          // one entry per row
  std::vector<std::vector<double>> values;   // values[row][channel]

  bool empty() const { return slots.empty(); }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, every_slots);
    ckpt::field(a, channels);
    ckpt::field(a, slots);
    ckpt::field(a, values);
    if constexpr (Ar::kLoading) {
      if (slots.size() != values.size())
        throw ckpt::Error("timeseries row count mismatch in checkpoint");
      for (const auto& row : values)
        if (row.size() != channels.size())
          throw ckpt::Error("timeseries channel count mismatch");
    }
  }
};

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(const TimeSeriesConfig& cfg = {});

  /// Declares the column layout. Must be called (once) before the first
  /// record(); the sampler is inert until it has channels.
  void set_channels(std::vector<std::string> channels);

  bool enabled() const { return cfg_.enabled && !channels_.empty(); }

  /// True when `slot` is a sampling point under the current stride.
  /// Callers gate the (possibly expensive) channel evaluation on this.
  bool due(std::uint64_t slot) const {
    return enabled() && stride_ != 0 && slot % stride_ == 0;
  }

  /// Appends one row; `values.size()` must equal the channel count.
  /// May decimate: afterwards `stride()` can have doubled.
  void record(std::uint64_t slot, const std::vector<double>& values);

  std::uint64_t stride() const { return stride_; }
  std::size_t size() const { return slots_.size(); }

  TimeSeriesData snapshot() const;

  /// Checkpoint body. Channels are config-derived (re-set on restore by
  /// the owning simulator), so only their count is verified here; the
  /// stride and retained rows are restored exactly, keeping `due()`
  /// answers identical on both sides of a mid-window resume.
  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, stride_);
    std::uint64_t nch = channels_.size();
    ckpt::field(a, nch);
    if constexpr (Ar::kLoading) {
      if (nch != channels_.size())
        throw ckpt::Error("timeseries sampler channel mismatch");
      if (cfg_.enabled && stride_ == 0)
        throw ckpt::Error("timeseries sampler stride zero in checkpoint");
    }
    ckpt::field(a, slots_);
    ckpt::field(a, rows_);
    if constexpr (Ar::kLoading) {
      if (slots_.size() != rows_.size())
        throw ckpt::Error("timeseries sampler row mismatch");
      if (slots_.size() > cfg_.max_samples)
        throw ckpt::Error("timeseries sampler over capacity in checkpoint");
      for (const auto& row : rows_)
        if (row.size() != channels_.size())
          throw ckpt::Error("timeseries sampler row width mismatch");
    }
  }

 private:
  void decimate();

  TimeSeriesConfig cfg_;
  std::vector<std::string> channels_;
  std::uint64_t stride_ = 0;
  std::vector<std::uint64_t> slots_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace osmosis::prof
