#pragma once
// Wall-clock profiling for the hot loops (DESIGN.md §11). A process-wide
// Profiler collects per-phase timing from RAII scoped timers placed in
// the simulators' slot loops (VOQ ingest, scheduler tick, crossbar
// transfer, ARQ, fault injector, telemetry sampling) and around campaign
// jobs. Two products:
//
//   * a flat profile — count / total / mean / max wall time per phase,
//     merged across threads, landed in RunReport under "profile";
//   * optionally the raw spans (begin timestamp + duration per thread),
//     the input of the Chrome-trace exporter (trace_export.hpp), which
//     renders an 8-thread campaign as a per-worker Gantt chart.
//
// Cost discipline: the profiler is DISABLED by default. A disabled
// OSMOSIS_PROF_SCOPE is one relaxed atomic load and a branch (< 2% of
// any simulator slot; bench_perf measures and asserts the bound), so the
// hooks stay compiled into release binaries. Building with
// -DOSMOSIS_PROF_DISABLED removes even that. Enabled, a scope costs two
// steady_clock reads plus one uncontended mutex acquisition on exit.
//
// Thread model: each thread owns its accumulation state (registered
// globally on first use and kept alive after thread exit, so pool
// workers joined before the snapshot still report). State is mutated
// under a per-thread mutex, so flat_profile()/spans() may be called
// while instrumented threads are running.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ckpt/archive.hpp"

namespace osmosis::prof {

/// Flat-profile entry for one phase: wall time across all threads.
struct PhaseStats {
  std::uint64_t count = 0;
  double total_ns = 0.0;
  double max_ns = 0.0;

  double mean_ns() const {
    return count ? total_ns / static_cast<double>(count) : 0.0;
  }

  template <class Ar>
  void io_state(Ar& a) {
    ckpt::field(a, count);
    ckpt::field(a, total_ns);
    ckpt::field(a, max_ns);
  }
};

/// One captured span: phase name, owning thread, and its wall-clock
/// window relative to the enable() epoch.
struct WallSpan {
  std::string name;
  std::uint32_t tid = 0;
  double t0_us = 0.0;
  double dur_us = 0.0;
};

namespace detail {
// The one branch a disabled scope pays. Relaxed is enough: enabling
// mid-scope only means that scope is not counted, never a torn stat.
extern std::atomic<bool> g_enabled;
struct ThreadState;
ThreadState* thread_state();
void record_phase(ThreadState* st, const char* name, std::uint64_t t0_ns);
void record_task(ThreadState* st, const std::string& name,
                 std::uint64_t t0_ns);
std::uint64_t now_ns();
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

class Profiler {
 public:
  static Profiler& instance();

  /// Turns collection on. `capture_spans` additionally retains the raw
  /// spans (bounded per thread; overflow is counted, never blocking) for
  /// Chrome-trace export. Resets the epoch; does not clear prior stats.
  void enable(bool capture_spans = false);
  void disable();

  /// Drops all accumulated stats, spans, and thread names. The thread
  /// registrations themselves survive (tids stay stable).
  void reset();

  /// Names the calling thread's track in trace exports ("worker-3").
  void set_thread_name(const std::string& name);

  /// Per-phase stats merged across every registered thread, keyed by
  /// phase name. Sorted map => deterministic serialization order.
  std::map<std::string, PhaseStats> flat_profile() const;

  /// All captured spans (enable(true) only), ordered by thread then
  /// start time. Thread names come back through `names` (tid-indexed
  /// entries may be empty when a thread never named itself).
  std::vector<WallSpan> spans() const;
  std::map<std::uint32_t, std::string> thread_names() const;
  std::uint64_t spans_dropped() const;

 private:
  Profiler() = default;
};

/// RAII phase timer for string-literal phase names (the macro's target).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name) {
    if (!prof::enabled()) return;
    st_ = detail::thread_state();
    name_ = name;
    t0_ns_ = detail::now_ns();
  }
  ~ScopedPhase() {
    if (st_) detail::record_phase(st_, name_, t0_ns_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  detail::ThreadState* st_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t t0_ns_ = 0;
};

/// RAII timer for dynamically named work items (campaign jobs): the span
/// carries the full name; the flat profile aggregates under `phase`.
class ScopedTask {
 public:
  ScopedTask(std::string name, const char* phase = "exec.job") {
    if (!prof::enabled()) return;
    st_ = detail::thread_state();
    name_ = std::move(name);
    phase_ = phase;
    t0_ns_ = detail::now_ns();
  }
  ~ScopedTask();
  ScopedTask(const ScopedTask&) = delete;
  ScopedTask& operator=(const ScopedTask&) = delete;

 private:
  detail::ThreadState* st_ = nullptr;
  std::string name_;
  const char* phase_ = nullptr;
  std::uint64_t t0_ns_ = 0;
};

}  // namespace osmosis::prof

// OSMOSIS_PROF_SCOPE("sim.phase"): times the enclosing scope under the
// given phase name. Compiles to nothing with -DOSMOSIS_PROF_DISABLED.
#ifdef OSMOSIS_PROF_DISABLED
#define OSMOSIS_PROF_SCOPE(name) \
  do {                           \
  } while (false)
#else
#define OSMOSIS_PROF_CONCAT2(a, b) a##b
#define OSMOSIS_PROF_CONCAT(a, b) OSMOSIS_PROF_CONCAT2(a, b)
#define OSMOSIS_PROF_SCOPE(name)                    \
  ::osmosis::prof::ScopedPhase OSMOSIS_PROF_CONCAT( \
      osmosis_prof_scope_, __COUNTER__)(name)
#endif
