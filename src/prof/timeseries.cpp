#include "src/prof/timeseries.hpp"

namespace osmosis::prof {

TimeSeriesSampler::TimeSeriesSampler(const TimeSeriesConfig& cfg)
    : cfg_(cfg) {
  if (cfg_.every_slots == 0) cfg_.every_slots = 1;
  if (cfg_.max_samples < 2) cfg_.max_samples = 2;
  stride_ = cfg_.every_slots;
}

void TimeSeriesSampler::set_channels(std::vector<std::string> channels) {
  channels_ = std::move(channels);
}

void TimeSeriesSampler::record(std::uint64_t slot,
                               const std::vector<double>& values) {
  if (!enabled() || values.size() != channels_.size()) return;
  // A doubled stride can make a previously due slot stale (decimation
  // happened between due() and record() never occurs — record itself
  // decimates — but a caller recording without consulting due() must
  // not corrupt spacing).
  if (slot % stride_ != 0) return;
  if (!slots_.empty() && slot <= slots_.back()) return;  // monotonic only
  slots_.push_back(slot);
  rows_.push_back(values);
  if (slots_.size() >= cfg_.max_samples) decimate();
}

void TimeSeriesSampler::decimate() {
  // Keep even-indexed rows. Row 0's slot is a multiple of the old
  // stride; retained rows stay multiples of the doubled stride because
  // consecutive retained rows were 2 old strides apart.
  std::size_t w = 0;
  for (std::size_t r = 0; r < slots_.size(); r += 2) {
    if (w != r) {  // guard the r==0 self-move, which would hollow the row
      slots_[w] = slots_[r];
      rows_[w] = std::move(rows_[r]);
    }
    ++w;
  }
  slots_.resize(w);
  rows_.resize(w);
  stride_ *= 2;
}

TimeSeriesData TimeSeriesSampler::snapshot() const {
  TimeSeriesData d;
  d.every_slots = stride_;
  d.channels = channels_;
  d.slots = slots_;
  d.values = rows_;
  return d;
}

}  // namespace osmosis::prof
