#include "src/prof/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace osmosis::prof {
namespace detail {

std::atomic<bool> g_enabled{false};

namespace {
// Raw span as recorded on the hot path: literal phase pointer plus an
// optional owned name (campaign jobs). Converted to WallSpan (name
// resolved, ns -> us) only at snapshot time.
struct RawSpan {
  const char* phase = nullptr;
  std::string task;  // non-empty for ScopedTask spans
  std::uint64_t t0_ns = 0;
  std::uint64_t dur_ns = 0;
};
}  // namespace

// Per-thread accumulation state. Created on a thread's first enabled
// scope, registered in the global registry, and kept alive after the
// thread exits so a post-join snapshot still sees every worker.
struct ThreadState {
  explicit ThreadState(std::uint32_t id) : tid(id) {}

  std::uint32_t tid;
  mutable std::mutex mu;
  // Literal-keyed accumulators: the macro passes string literals, so
  // pointer identity is the common case; snapshot re-merges by string
  // to fold identical names from different translation units.
  std::unordered_map<const char*, PhaseStats> by_phase;
  std::map<std::string, PhaseStats> by_task_phase;  // ScopedTask phases
  std::string name;
  std::vector<RawSpan> spans;
  std::uint64_t spans_dropped = 0;
};

namespace {

struct Registry {
  std::mutex mu;
  // unique_ptr so ThreadState addresses are stable while the vector
  // grows; states are never destroyed until process exit.
  std::vector<std::unique_ptr<ThreadState>> states;
  std::uint64_t epoch_ns = 0;
  // Read on the hot path without mu; atomic keeps the read race-free.
  std::atomic<bool> capture_spans{false};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives exiting threads
  return *r;
}

// Bound per thread, not global: one misbehaving phase cannot evict the
// other threads' spans. 1 << 18 spans ~= 12 MiB/thread worst case.
constexpr std::size_t kMaxSpansPerThread = std::size_t{1} << 18;

void push_span(ThreadState* st, RawSpan&& span) {
  if (st->spans.size() >= kMaxSpansPerThread) {
    ++st->spans_dropped;
    return;
  }
  st->spans.push_back(std::move(span));
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadState* thread_state() {
  thread_local ThreadState* st = [] {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto id = static_cast<std::uint32_t>(r.states.size());
    r.states.push_back(std::make_unique<ThreadState>(id));
    return r.states.back().get();
  }();
  return st;
}

void record_phase(ThreadState* st, const char* name, std::uint64_t t0_ns) {
  const std::uint64_t end_ns = now_ns();
  const auto dur = static_cast<double>(end_ns - t0_ns);
  std::lock_guard<std::mutex> lock(st->mu);
  PhaseStats& ps = st->by_phase[name];
  ++ps.count;
  ps.total_ns += dur;
  ps.max_ns = std::max(ps.max_ns, dur);
  if (registry().capture_spans.load(std::memory_order_relaxed))
    push_span(st, RawSpan{name, {}, t0_ns, end_ns - t0_ns});
}

void record_task(ThreadState* st, const std::string& name,
                 std::uint64_t t0_ns) {
  const std::uint64_t end_ns = now_ns();
  const auto dur = static_cast<double>(end_ns - t0_ns);
  std::lock_guard<std::mutex> lock(st->mu);
  PhaseStats& ps = st->by_task_phase[name];
  ++ps.count;
  ps.total_ns += dur;
  ps.max_ns = std::max(ps.max_ns, dur);
}

}  // namespace detail

ScopedTask::~ScopedTask() {
  if (!st_) return;
  const std::uint64_t end_ns = detail::now_ns();
  detail::record_task(st_, phase_, t0_ns_);
  detail::Registry& r = detail::registry();
  if (r.capture_spans.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(st_->mu);
    detail::push_span(
        st_, detail::RawSpan{phase_, std::move(name_), t0_ns_,
                             end_ns - t0_ns_});
  }
}

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

void Profiler::enable(bool capture_spans) {
  detail::Registry& r = detail::registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.capture_spans.store(capture_spans, std::memory_order_relaxed);
    r.epoch_ns = detail::now_ns();
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void Profiler::disable() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void Profiler::reset() {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& st : r.states) {
    std::lock_guard<std::mutex> slock(st->mu);
    st->by_phase.clear();
    st->by_task_phase.clear();
    st->spans.clear();
    st->spans_dropped = 0;
    st->name.clear();
  }
}

void Profiler::set_thread_name(const std::string& name) {
  detail::ThreadState* st = detail::thread_state();
  std::lock_guard<std::mutex> lock(st->mu);
  st->name = name;
}

std::map<std::string, PhaseStats> Profiler::flat_profile() const {
  detail::Registry& r = detail::registry();
  std::map<std::string, PhaseStats> merged;
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& st : r.states) {
    std::lock_guard<std::mutex> slock(st->mu);
    auto merge = [&merged](const std::string& key, const PhaseStats& ps) {
      PhaseStats& dst = merged[key];
      dst.count += ps.count;
      dst.total_ns += ps.total_ns;
      dst.max_ns = std::max(dst.max_ns, ps.max_ns);
    };
    for (const auto& [name, ps] : st->by_phase) merge(name, ps);
    for (const auto& [name, ps] : st->by_task_phase) merge(name, ps);
  }
  return merged;
}

std::vector<WallSpan> Profiler::spans() const {
  detail::Registry& r = detail::registry();
  std::vector<WallSpan> out;
  std::lock_guard<std::mutex> lock(r.mu);
  const std::uint64_t epoch = r.epoch_ns;
  for (auto& st : r.states) {
    std::lock_guard<std::mutex> slock(st->mu);
    for (const detail::RawSpan& raw : st->spans) {
      WallSpan w;
      w.name = raw.task.empty() ? std::string(raw.phase) : raw.task;
      w.tid = st->tid;
      // Spans recorded before the current epoch (enable() after a prior
      // run) would go negative; clamp to the epoch start.
      const std::uint64_t t0 = std::max(raw.t0_ns, epoch);
      w.t0_us = static_cast<double>(t0 - epoch) / 1000.0;
      w.dur_us = static_cast<double>(raw.dur_ns) / 1000.0;
      out.push_back(std::move(w));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const WallSpan& a, const WallSpan& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.t0_us != b.t0_us) return a.t0_us < b.t0_us;
              return a.dur_us > b.dur_us;  // outer span first
            });
  return out;
}

std::map<std::uint32_t, std::string> Profiler::thread_names() const {
  detail::Registry& r = detail::registry();
  std::map<std::uint32_t, std::string> names;
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& st : r.states) {
    std::lock_guard<std::mutex> slock(st->mu);
    if (!st->name.empty()) names[st->tid] = st->name;
  }
  return names;
}

std::uint64_t Profiler::spans_dropped() const {
  detail::Registry& r = detail::registry();
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& st : r.states) {
    std::lock_guard<std::mutex> slock(st->mu);
    total += st->spans_dropped;
  }
  return total;
}

}  // namespace osmosis::prof
