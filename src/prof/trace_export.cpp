#include "src/prof/trace_export.hpp"

#include <algorithm>

#include "src/telemetry/json.hpp"

namespace osmosis::prof {

void ChromeTraceBuilder::process_name(int pid, const std::string& name) {
  process_names_[pid] = name;
}

void ChromeTraceBuilder::thread_name(int pid, int tid,
                                     const std::string& name) {
  thread_names_[{pid, tid}] = name;
}

void ChromeTraceBuilder::duration(int pid, int tid, const std::string& name,
                                  double ts_us, double dur_us,
                                  const std::map<std::string, double>& args) {
  spans_.push_back(Span{pid, tid, name, ts_us, std::max(dur_us, 0.0), args});
}

void ChromeTraceBuilder::async_begin(
    int pid, int tid, const std::string& cat, std::uint64_t id,
    const std::string& name, double ts_us,
    const std::map<std::string, double>& args) {
  Event e;
  e.ph = 'b';
  e.pid = pid;
  e.tid = tid;
  e.name = name;
  e.cat = cat;
  e.id = id;
  e.has_id = true;
  e.ts_us = ts_us;
  e.args = args;
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::async_end(int pid, int tid, const std::string& cat,
                                   std::uint64_t id, double ts_us) {
  Event e;
  e.ph = 'e';
  e.pid = pid;
  e.tid = tid;
  e.cat = cat;
  e.id = id;
  e.has_id = true;
  e.ts_us = ts_us;
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::counter(int pid, int tid, const std::string& name,
                                 double ts_us,
                                 const std::map<std::string, double>& series) {
  Event e;
  e.ph = 'C';
  e.pid = pid;
  e.tid = tid;
  e.name = name;
  e.ts_us = ts_us;
  e.args = series;
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::instant(int pid, int tid, const std::string& name,
                                 double ts_us) {
  Event e;
  e.ph = 'i';
  e.pid = pid;
  e.tid = tid;
  e.name = name;
  e.ts_us = ts_us;
  events_.push_back(std::move(e));
}

std::size_t ChromeTraceBuilder::event_count() const {
  // Each duration span expands to a B and an E event.
  return process_names_.size() + thread_names_.size() + 2 * spans_.size() +
         events_.size();
}

std::string ChromeTraceBuilder::to_json(int indent) const {
  // 1. Expand duration spans into properly nested B/E streams, one per
  // (pid, tid). Spans are sorted (start asc, duration desc) so an outer
  // span precedes the spans it contains; a stack then closes spans in
  // LIFO order.
  std::vector<Event> timed;
  timed.reserve(2 * spans_.size() + events_.size());

  std::map<std::pair<int, int>, std::vector<const Span*>> by_track;
  for (const Span& s : spans_) by_track[{s.pid, s.tid}].push_back(&s);

  for (auto& [track, list] : by_track) {
    std::sort(list.begin(), list.end(), [](const Span* a, const Span* b) {
      if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
      if (a->dur_us != b->dur_us) return a->dur_us > b->dur_us;
      return a->name < b->name;
    });
    struct Open {
      const Span* span;
      double end_us;
    };
    std::vector<Open> stack;
    auto emit = [&timed, &track](char ph, const Span* s, double ts) {
      Event e;
      e.ph = ph;
      e.pid = track.first;
      e.tid = track.second;
      e.name = s->name;
      e.ts_us = ts;
      if (ph == 'B') e.args = s->args;
      timed.push_back(std::move(e));
    };
    for (const Span* s : list) {
      while (!stack.empty() && stack.back().end_us <= s->ts_us) {
        emit('E', stack.back().span, stack.back().end_us);
        stack.pop_back();
      }
      double end = s->ts_us + s->dur_us;
      // Clamp a straddler: profiler scopes nest by construction, so
      // this only fires on clock jitter at span boundaries.
      if (!stack.empty() && end > stack.back().end_us)
        end = stack.back().end_us;
      emit('B', s, s->ts_us);
      stack.push_back(Open{s, end});
    }
    while (!stack.empty()) {
      emit('E', stack.back().span, stack.back().end_us);
      stack.pop_back();
    }
  }

  for (const Event& e : events_) timed.push_back(e);

  // 2. Global nondecreasing ts. stable_sort keeps each track's internal
  // order for equal timestamps, preserving B/E nesting.
  std::stable_sort(timed.begin(), timed.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });

  // 3. Serialize: metadata first, then the timed stream.
  telemetry::JsonWriter w(indent);
  w.open('{');
  w.key("traceEvents");
  w.open('[');

  auto meta = [&w](const char* name, int pid, int tid, bool with_tid,
                   const std::string& value) {
    w.open('{');
    w.key("ph");
    w.string("M");
    w.key("name");
    w.string(name);
    w.key("pid");
    w.number(pid);
    if (with_tid) {
      w.key("tid");
      w.number(tid);
    }
    w.key("args");
    w.open('{');
    w.key("name");
    w.string(value);
    w.close('}');
    w.close('}');
  };
  for (const auto& [pid, name] : process_names_)
    meta("process_name", pid, 0, false, name);
  for (const auto& [track, name] : thread_names_)
    meta("thread_name", track.first, track.second, true, name);

  for (const Event& e : timed) {
    w.open('{');
    w.key("ph");
    w.string(std::string(1, e.ph));
    if (!e.name.empty() || e.ph == 'B' || e.ph == 'b') {
      w.key("name");
      w.string(e.name);
    }
    if (!e.cat.empty()) {
      w.key("cat");
      w.string(e.cat);
    }
    if (e.has_id) {
      w.key("id");
      w.number(static_cast<double>(e.id));
    }
    w.key("pid");
    w.number(e.pid);
    w.key("tid");
    w.number(e.tid);
    w.key("ts");
    w.number(e.ts_us);
    if (e.ph == 'i') {
      w.key("s");
      w.string("t");
    }
    if (!e.args.empty()) {
      w.key("args");
      w.open('{');
      for (const auto& [k, v] : e.args) {
        w.key(k);
        w.number(v);
      }
      w.close('}');
    }
    w.close('}');
  }

  w.close(']');
  w.key("displayTimeUnit");
  w.string("ms");
  w.close('}');
  return w.str();
}

std::string wall_trace_json(const Profiler& profiler, int indent) {
  ChromeTraceBuilder b;
  constexpr int kPid = 0;
  b.process_name(kPid, "osmosis wall-clock");
  const auto names = profiler.thread_names();
  const auto spans = profiler.spans();
  for (const WallSpan& s : spans) {
    const int tid = static_cast<int>(s.tid);
    b.duration(kPid, tid, s.name, s.t0_us, s.dur_us);
  }
  // Name every track that has spans; fall back to "thread-N".
  std::map<int, std::string> track_names;
  for (const WallSpan& s : spans) {
    const int tid = static_cast<int>(s.tid);
    if (track_names.count(tid)) continue;
    auto it = names.find(s.tid);
    track_names[tid] = it != names.end() && !it->second.empty()
                           ? it->second
                           : "thread-" + std::to_string(tid);
  }
  for (const auto& [tid, name] : track_names) b.thread_name(kPid, tid, name);
  return b.to_json(indent);
}

std::string sim_trace_json(const telemetry::CellTrace* trace,
                           const faults::FaultPlan* plan,
                           const TimeSeriesData* series, double us_per_slot,
                           int indent) {
  ChromeTraceBuilder b;
  constexpr int kPid = 1;
  constexpr int kFaultTid = 1'000'000;  // clear of any real port index
  constexpr int kCounterTid = 1'000'001;
  b.process_name(kPid, "osmosis sim-time");

  double horizon_us = 0.0;  // end of permanent-fault windows

  if (trace) {
    const telemetry::TraceRing& ring = trace->ring();
    std::map<int, bool> ports;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const telemetry::CellSpan& s = ring.at(i);
      if (!s.has(telemetry::Stage::kEnqueue) ||
          !s.has(telemetry::Stage::kDeliver))
        continue;
      const double t0 = s.at(telemetry::Stage::kEnqueue) * us_per_slot;
      const double t1 = s.at(telemetry::Stage::kDeliver) * us_per_slot;
      std::map<std::string, double> args{
          {"dst", static_cast<double>(s.dst)},
          {"fc_hold", static_cast<double>(s.fc_hold_cycles)},
          {"retransmits", static_cast<double>(s.retransmits)},
      };
      if (s.has(telemetry::Stage::kGrant))
        args["wait_grant"] = s.request_to_grant() * us_per_slot;
      if (s.has(telemetry::Stage::kTransmit) &&
          s.has(telemetry::Stage::kGrant))
        args["xbar"] = s.grant_to_transmit() * us_per_slot;
      const std::string name = "cell " + std::to_string(s.src) + "->" +
                               std::to_string(s.dst);
      b.async_begin(kPid, s.src, "cell", s.trace_seq, name, t0, args);
      b.async_end(kPid, s.src, "cell", s.trace_seq, t1);
      ports[s.src] = true;
      horizon_us = std::max(horizon_us, t1);
    }
    for (const auto& [port, _] : ports)
      b.thread_name(kPid, port, "src port " + std::to_string(port));
  }

  if (series) {
    for (std::size_t row = 0; row < series->slots.size(); ++row) {
      const double ts = static_cast<double>(series->slots[row]) * us_per_slot;
      horizon_us = std::max(horizon_us, ts);
      for (std::size_t c = 0;
           c < series->channels.size() && c < series->values[row].size();
           ++c) {
        b.counter(kPid, kCounterTid, series->channels[c], ts,
                  {{"value", series->values[row][c]}});
      }
    }
  }

  if (plan && !plan->empty()) {
    b.thread_name(kPid, kFaultTid, "injected faults");
    for (const faults::FaultEvent& e : plan->events())
      horizon_us =
          std::max(horizon_us, static_cast<double>(e.at_slot) * us_per_slot);
    horizon_us += us_per_slot;  // permanent faults get a visible window
    std::uint64_t id = 0;
    for (const faults::FaultEvent& e : plan->events()) {
      std::string name = faults::to_string(e.kind);
      if (e.a >= 0) name += " a=" + std::to_string(e.a);
      if (e.b >= 0) name += " b=" + std::to_string(e.b);
      std::map<std::string, double> args{
          {"permanent", e.transient() ? 0.0 : 1.0}};
      if (e.rate > 0.0) args["rate"] = e.rate;
      const double t0 = static_cast<double>(e.at_slot) * us_per_slot;
      const double t1 =
          e.transient() ? static_cast<double>(e.end_slot()) * us_per_slot
                        : horizon_us;
      b.async_begin(kPid, kFaultTid, "fault", id, name, t0, args);
      b.async_end(kPid, kFaultTid, "fault", id, std::max(t1, t0));
      ++id;
    }
  }

  return b.to_json(indent);
}

}  // namespace osmosis::prof
