#!/usr/bin/env bash
# One-shot verification: configure, build, run the test suite, run the
# telemetry tour example and check that its RunReport JSON carries every
# key the osmosis.run_report.v1 schema promises, then rebuild the
# failure/fault-injection tests under ASan+UBSan and run them — the
# fault paths exercise mid-run structural changes (module death, fiber
# cuts, plane re-steering) where memory bugs would hide.
#
#   scripts/check.sh [build-dir]    (default: build)

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build}"

echo "== configure =="
cmake -B "$build" -S "$repo"

echo "== build =="
cmake --build "$build" -j "$(nproc)"

echo "== tests =="
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

echo "== telemetry tour =="
out="$("$build/examples/example_telemetry_tour" --slots=5000)"
echo "$out" | head -12

echo "== RunReport schema check =="
# The example prints the full JSON document; every schema key must appear.
for key in '"schema": "osmosis.run_report.v1"' '"sim"' '"time_unit"' \
           '"config"' '"info"' '"counters"' '"histograms"' '"health"' \
           '"stage.request_to_grant"' '"stage.grant_to_transmit"' \
           '"stage.transmit_to_deliver"' '"stage.end_to_end"'; do
  if ! grep -qF "$key" <<<"$out"; then
    echo "FAIL: RunReport JSON is missing $key" >&2
    exit 1
  fi
done
echo "all schema keys present"

echo "== sanitizer build (ASan + UBSan) =="
san_build="$repo/build-asan"
cmake -B "$san_build" -S "$repo" -DOSMOSIS_SANITIZE=ON
cmake --build "$san_build" -j "$(nproc)" \
  --target failures_test faults_test arq_test fec_test

echo "== sanitizer run: failure & fault-injection tests =="
for t in failures_test faults_test arq_test fec_test; do
  echo "-- $t"
  "$san_build/tests/$t" --gtest_brief=1
done

echo "== OK =="
