#!/usr/bin/env bash
# One-shot verification: configure, build, run the test suite, run the
# telemetry tour example and check that its RunReport JSON carries every
# key the osmosis.run_report.v1 schema promises, run the smoke campaign
# and hold it against the committed perf baseline with campaign_compare,
# SIGKILL a checkpointing smoke campaign mid-flight and prove the
# resumed document is byte-identical to the uninterrupted run (plus a
# ckpt_verify divergence replay of any surviving state file), run the
# tracked perf suite (bench_perf --smoke) and validate every artifact it
# emits — BENCH_perf.json, both Chrome traces, the profiled RunReport —
# with schema_check, run the fixed-seed chaos smoke soak (25 randomized
# fault-fuzzing trials, zero invariant violations, manifest
# byte-identical to the committed baseline and across thread counts),
# run the graceful-degradation study (permanent spine cut under adaptive
# routing + admission must hold the availability floor and emit a valid
# availability/SLO report section), run the open-loop serving smoke sweep
# (bench_serve --smoke, including the million-client Poisson point) and
# hold it against its committed baseline plus 1-vs-8-thread and
# kill-and-resume byte diffs and a schema_check --need-serving pass,
# run the topology-zoo scenario matrix (bench_campaign --topo across
# fat-tree/Clos/Benes x credit/relayed/wormhole-VC) against its
# committed baseline with the same 1-vs-8-thread and kill-and-resume
# byte diffs, assert the §VI.C stage-count ordering with
# bench_vi_c_stage_count and schema-check its topology report section,
# assert the disabled-profiler overhead bound on
# bench_micro numbers, then rebuild under ASan+UBSan (failure/fault/
# chaos/checkpoint tests plus the full injected-defect -> shrink ->
# chaos_repro round trip — mid-run structural changes and raw-byte
# deserialization, where memory bugs hide) and under TSan (the exec
# tests plus a multi-threaded smoke campaign and the chaos soak's
# thread pool — the only concurrency in the tree).
#
#   scripts/check.sh [build-dir]    (default: build)

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build}"

echo "== configure =="
cmake -B "$build" -S "$repo"

echo "== build =="
cmake --build "$build" -j "$(nproc)"

echo "== tests =="
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

echo "== telemetry tour =="
out="$("$build/examples/example_telemetry_tour" --slots=5000)"
echo "$out" | head -12

echo "== RunReport schema check =="
# The example prints the full JSON document; every schema key must appear.
for key in '"schema": "osmosis.run_report.v1"' '"sim"' '"time_unit"' \
           '"config"' '"info"' '"counters"' '"histograms"' '"health"' \
           '"stage.request_to_grant"' '"stage.grant_to_transmit"' \
           '"stage.transmit_to_deliver"' '"stage.end_to_end"'; do
  if ! grep -qF "$key" <<<"$out"; then
    echo "FAIL: RunReport JSON is missing $key" >&2
    exit 1
  fi
done
echo "all schema keys present"

echo "== smoke campaign + perf-regression gate =="
smoke_json="$build/campaign_smoke.json"
# --progress and --trace ride along: the heartbeat stream must carry one
# JSON line per job and the wall-clock trace must pass the schema check.
"$build/bench/bench_campaign" --smoke --json="$smoke_json" --timing=false \
  --progress --trace="$build/campaign_trace.json" \
  > /dev/null 2> "$build/campaign_progress.jsonl"
"$build/bench/campaign_compare" "$repo/bench/baselines/campaign_smoke.json" \
  "$smoke_json"
"$build/bench/schema_check" --campaign="$smoke_json"
jobs_done=$(grep -c '"wall_ms"' "$build/campaign_progress.jsonl")
if [ "$jobs_done" != 8 ]; then
  echo "FAIL: expected 8 progress heartbeat lines, saw $jobs_done" >&2
  exit 1
fi
"$build/bench/schema_check" --trace="$build/campaign_trace.json"

echo "== campaign determinism: 1 thread vs 8 threads =="
"$build/bench/bench_campaign" --smoke --threads=1 \
  --json="$build/campaign_smoke_t1.json" --timing=false > /dev/null
"$build/bench/bench_campaign" --smoke --threads=8 \
  --json="$build/campaign_smoke_t8.json" --timing=false > /dev/null
cmp "$build/campaign_smoke_t1.json" "$build/campaign_smoke_t8.json"
echo "byte-identical at 1 and 8 threads"

echo "== kill-and-resume: SIGKILL mid-campaign, resume, byte-diff =="
ck_dir="$build/ckpt_smoke"
rm -rf "$ck_dir"
# Start the checkpointing smoke campaign and SIGKILL it mid-flight. A
# tiny --checkpoint-every keeps state files fresh so the kill always
# lands with work outstanding.
"$build/bench/bench_campaign" --smoke --timing=false \
  --checkpoint-dir="$ck_dir" --checkpoint-every=200 \
  --json="$build/campaign_killed.json" > /dev/null 2>&1 &
victim=$!
sleep 0.3
kill -9 "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true

echo "== divergence-checking replay on surviving state files =="
# Before the resume consumes them: restore each mid-flight snapshot,
# replay the same job from scratch, and walk both in lockstep.
found_state=0
for f in "$ck_dir"/job_*.state.ckpt; do
  [ -e "$f" ] || continue
  found_state=1
  "$build/bench/ckpt_verify" --state="$f" --stride=500
done
if [ "$found_state" = 0 ]; then
  echo "note: the kill landed between checkpoints (no state file to replay)"
fi

"$build/bench/bench_campaign" --smoke --timing=false \
  --resume="$ck_dir" --checkpoint-every=200 \
  --json="$build/campaign_resumed.json" > /dev/null
cmp "$build/campaign_smoke_t1.json" "$build/campaign_resumed.json"
echo "resumed document byte-identical to the uninterrupted run"

echo "== serve smoke: open-loop serving sweep vs committed baseline =="
serve_json="$build/serve_smoke.json"
"$build/bench/bench_serve" --smoke --json="$serve_json" --timing=false \
  --report="$build/serve_report.json" > /dev/null
cmp "$repo/bench/baselines/serve_smoke.json" "$serve_json"
"$build/bench/schema_check" --campaign="$serve_json"
"$build/bench/schema_check" --report="$build/serve_report.json" \
  --need-serving
echo "serving document matches the committed baseline"

echo "== serve determinism: 1 thread vs 8 threads =="
"$build/bench/bench_serve" --smoke --threads=1 \
  --json="$build/serve_smoke_t1.json" --timing=false > /dev/null
"$build/bench/bench_serve" --smoke --threads=8 \
  --json="$build/serve_smoke_t8.json" --timing=false > /dev/null
cmp "$build/serve_smoke_t1.json" "$build/serve_smoke_t8.json"
echo "byte-identical at 1 and 8 threads"

echo "== serve kill-and-resume: SIGKILL mid-sweep, resume, byte-diff =="
serve_ck_dir="$build/ckpt_serve"
rm -rf "$serve_ck_dir"
"$build/bench/bench_serve" --smoke --timing=false \
  --checkpoint-dir="$serve_ck_dir" --checkpoint-every=200 \
  --json="$build/serve_killed.json" > /dev/null 2>&1 &
victim=$!
sleep 0.1
kill -9 "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true
for f in "$serve_ck_dir"/job_*.state.ckpt; do
  [ -e "$f" ] || continue
  "$build/bench/ckpt_verify" --state="$f" --stride=500
done
"$build/bench/bench_serve" --smoke --timing=false \
  --resume="$serve_ck_dir" --checkpoint-every=200 \
  --json="$build/serve_resumed.json" > /dev/null
cmp "$build/serve_smoke_t1.json" "$build/serve_resumed.json"
echo "resumed serving document byte-identical to the uninterrupted run"

echo "== perf suite: bench_perf --smoke + schema checks =="
perf_json="$build/BENCH_perf.json"
"$build/bench/bench_perf" --smoke --json="$perf_json" \
  --trace="$build/prof_wall_trace.json" \
  --sim-trace="$build/prof_sim_trace.json" \
  --report="$build/prof_report.json" > /dev/null
"$build/bench/schema_check" --perf="$perf_json" \
  --baseline="$repo/bench/baselines/BENCH_perf_smoke.json"
"$build/bench/schema_check" --trace="$build/prof_wall_trace.json"
"$build/bench/schema_check" --trace="$build/prof_sim_trace.json"
"$build/bench/schema_check" --report="$build/prof_report.json" \
  --need-profile --need-timeseries

echo "== chaos smoke: 25 fixed-seed trials, zero violations =="
chaos_json="$build/chaos_smoke.json"
"$build/bench/bench_chaos" --trials=25 --seed=1 --threads=1 \
  --json="$chaos_json" > /dev/null
cmp "$repo/bench/baselines/chaos_smoke.json" "$chaos_json"
echo "manifest matches the committed baseline"

echo "== chaos determinism: manifest byte-identical at 1 and 8 threads =="
"$build/bench/bench_chaos" --trials=25 --seed=1 --threads=8 \
  --json="$build/chaos_smoke_t8.json" > /dev/null
cmp "$chaos_json" "$build/chaos_smoke_t8.json"
echo "byte-identical at 1 and 8 threads"

echo "== topology zoo: scenario matrix vs committed baseline =="
topo_json="$build/topo_smoke.json"
"$build/bench/bench_campaign" --topo --threads=1 --timing=false \
  --json="$topo_json" > /dev/null
"$build/bench/campaign_compare" "$repo/bench/baselines/topo_smoke.json" \
  "$topo_json"
cmp "$repo/bench/baselines/topo_smoke.json" "$topo_json"
"$build/bench/schema_check" --campaign="$topo_json"
echo "topology x flow-control matrix matches the committed baseline"

echo "== topo determinism: 1 thread vs 8 threads =="
"$build/bench/bench_campaign" --topo --threads=8 --timing=false \
  --json="$build/topo_smoke_t8.json" > /dev/null
cmp "$topo_json" "$build/topo_smoke_t8.json"
echo "byte-identical at 1 and 8 threads"

echo "== topo kill-and-resume: SIGKILL mid-matrix, resume, byte-diff =="
topo_ck_dir="$build/ckpt_topo"
rm -rf "$topo_ck_dir"
"$build/bench/bench_campaign" --topo --timing=false \
  --checkpoint-dir="$topo_ck_dir" --checkpoint-every=200 \
  --json="$build/topo_killed.json" > /dev/null 2>&1 &
victim=$!
sleep 0.3
kill -9 "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true
"$build/bench/bench_campaign" --topo --timing=false \
  --resume="$topo_ck_dir" --checkpoint-every=200 \
  --json="$build/topo_resumed.json" > /dev/null
cmp "$topo_json" "$build/topo_resumed.json"
echo "resumed topology document byte-identical to the uninterrupted run"

echo "== VI.C stage-count matrix: 3 vs 5 vs 9 stages, ordering asserted =="
# The binary itself REQUIREs the paper's ordering (fat tree >= MIN
# throughput, latency grows with stage count); here we also hold its
# RunReport to the schema's topology section.
"$build/bench/bench_vi_c_stage_count" --report="$build/topo_report.json" \
  > /dev/null
"$build/bench/schema_check" --report="$build/topo_report.json" \
  --need-topology
echo "stage-count ordering holds and the topology report is well-formed"

echo "== graceful degradation: permanent spine cut, floor + availability =="
# bench_failures --permanent exits non-zero if the degraded run drops
# below (surviving fraction) x (fault-free throughput) x 0.9, is not
# exactly-once for non-shed cells, or fails shed accounting; its report
# must carry a well-formed availability/SLO section.
degraded_json="$build/degraded_report.json"
"$build/bench/bench_failures" --permanent --slots=8000 \
  --json="$degraded_json" > /dev/null
"$build/bench/schema_check" --report="$degraded_json" --need-availability
echo "throughput floor, exactly-once, and shed accounting hold"

echo "== disabled-profiler overhead bound (bench_micro) =="
"$build/bench/bench_micro" \
  --benchmark_filter='BM_ProfScope|BM_SwitchSimRun/0' \
  --benchmark_format=json --benchmark_min_time=0.05 \
  > "$build/bench_micro_prof.json" 2> /dev/null
"$build/bench/schema_check" --micro="$build/bench_micro_prof.json"

echo "== sanitizer build (ASan + UBSan) =="
san_build="$repo/build-asan"
cmake -B "$san_build" -S "$repo" -DOSMOSIS_SANITIZE=ON
cmake --build "$san_build" -j "$(nproc)" \
  --target failures_test faults_test arq_test fec_test ckpt_test \
           chaos_test topo_sim_test api_test bench_chaos chaos_repro \
           schema_check

echo "== sanitizer run: failure, fault-injection, checkpoint & api tests =="
for t in failures_test faults_test arq_test fec_test ckpt_test \
         chaos_test topo_sim_test api_test; do
  echo "-- $t"
  "$san_build/tests/$t" --gtest_brief=1
done

echo "== sanitizer run: shrinker round trip on an injected defect =="
# Arm a deliberate accounting bug (dropped deliveries inside fault
# windows), let the soak detect it, shrink the failing trial to a
# minimal repro, then replay the repro file and demand the same
# verdict — the full chaos pipeline under ASan+UBSan.
san_repro="$san_build/chaos_defect_repro.json"
"$san_build/bench/bench_chaos" --trials=25 --seed=7 \
  --inject-defect=drop_delivery_during_fault --shrink \
  --repro-out="$san_repro" > /dev/null
"$san_build/bench/schema_check" --repro="$san_repro"
"$san_build/bench/chaos_repro" "$san_repro"

echo "== sanitizer run: degraded-mode repro replay =="
# The committed graceful-degradation reference trial (permanent spine
# cut, adaptive routing + admission) under ASan+UBSan: re-steering,
# resequencing, and shed accounting are fresh pointer-heavy paths.
"$san_build/bench/chaos_repro" "$repo/bench/baselines/degraded_repro.json"

echo "== sanitizer build (TSan) =="
tsan_build="$repo/build-tsan"
cmake -B "$tsan_build" -S "$repo" -DOSMOSIS_SANITIZE=thread
cmake --build "$tsan_build" -j "$(nproc)" \
  --target exec_test bench_campaign campaign_compare bench_chaos

echo "== sanitizer run: exec tests + multi-threaded smoke campaign =="
"$tsan_build/tests/exec_test" --gtest_brief=1
"$tsan_build/bench/bench_campaign" --smoke --threads=8 \
  --json="$tsan_build/campaign_smoke.json" --timing=false > /dev/null
"$tsan_build/bench/campaign_compare" \
  "$repo/bench/baselines/campaign_smoke.json" \
  "$tsan_build/campaign_smoke.json"
"$tsan_build/bench/bench_campaign" --topo --threads=8 \
  --json="$tsan_build/topo_smoke.json" --timing=false > /dev/null
"$tsan_build/bench/campaign_compare" \
  "$repo/bench/baselines/topo_smoke.json" \
  "$tsan_build/topo_smoke.json"
"$tsan_build/bench/bench_chaos" --trials=10 --seed=1 --threads=8 \
  > /dev/null

echo "== OK =="
